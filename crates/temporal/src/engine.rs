//! Bit-parallel multi-source journey engine.
//!
//! One scalar [`foremost`](crate::foremost::foremost) sweep answers "when
//! does *one* source reach every vertex" in `O(M + a)` time. The engine
//! answers the same question for up to **64 sources in a single pass** over
//! the label-bucketed time-edge index by packing one source per bit of a
//! `u64` word per vertex:
//!
//! * `before[v]` — the set of sources that reached `v` **strictly before**
//!   the time currently being processed (sources start with their own bit
//!   set, mirroring `arrival[source] = start_time`);
//! * `delta[v]` — the sources newly arriving at `v` **at** the current time.
//!
//! Processing time `t` ORs `before[u] & !before[v]` into `delta[v]` for
//! every edge `(u, v)` available at `t` (both directions when undirected),
//! then commits every delta at once. Because a vertex first reached *at*
//! `t` can never extend a journey with another label-`t` edge (labels along
//! a journey are **strictly** increasing, Definition 2), deferring the
//! commit to the end of the bucket reproduces the scalar sweep exactly —
//! the per-(source, target) arrival times are **bit-identical** to 64
//! independent scalar sweeps, which the differential property tests in
//! `tests/engine_proptests.rs` pin down.
//!
//! Two quantities fall out of the pass for free:
//!
//! * arrivals — the commit callback fires once per `(source, vertex)` pair
//!   at the moment its bit first sets, so recording arrival matrices costs
//!   `O(reached pairs)` on top of the sweep;
//! * the **instance temporal diameter** — the last time any bit newly set,
//!   once all `lanes · n` bits are full, is `max_{s,t} δ(s,t)` of the batch
//!   with no arrival matrix needed ([`SweepStats::last_arrival`]).
//!
//! [`ReachabilityMatrix`](crate::closure::ReachabilityMatrix), the
//! all-pairs [`DistanceMatrix`](crate::distance::DistanceMatrix),
//! [`instance_temporal_diameter`](crate::distance::instance_temporal_diameter)
//! and the `T_reach` checks in [`reachability`](crate::reachability) run
//! through this kernel below
//! [`WIDE_CROSSOVER`](crate::wide::WIDE_CROSSOVER) (≈64× fewer index
//! passes than their old source-at-a-time loops); above it the
//! density-aware [`EngineChoice`](crate::sparse::EngineChoice) picks
//! between the single-pass [`wide`](crate::wide) engine (dense occupied
//! buckets) and the event-driven [`sparse`](crate::sparse) engine
//! (everything else). The batched sweeper remains the engine of choice
//! for **few-source** queries at any size, and the scalar `foremost`
//! stays as the differential-testing oracle for all of them.

use crate::kernels::ornot_word;
use crate::network::TemporalNetwork;
use crate::{Time, NEVER};
use ephemeral_graph::NodeId;
use ephemeral_parallel::faults::{self, CancelToken};

/// Number of sources a single sweep can carry (one per bit of a `u64`).
pub const MAX_LANES: usize = 64;

/// Number of batches needed to cover `n` sources at [`MAX_LANES`] per sweep.
#[must_use]
pub fn batch_count(n: usize) -> usize {
    n.div_ceil(MAX_LANES)
}

/// The source vertices of batch `b` when sweeping all `n` sources in
/// [`batch_count`]`(n)` batches: `b·64 .. min(n, (b+1)·64)`.
#[must_use]
pub fn batch_range(n: usize, b: usize) -> std::ops::Range<NodeId> {
    let lo = (b * MAX_LANES).min(n) as NodeId;
    let hi = ((b + 1) * MAX_LANES).min(n) as NodeId;
    lo..hi
}

/// What a batched sweep observed (counts are per batch, not per source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Number of source lanes the sweep carried (`sources.len()`).
    pub lanes: usize,
    /// Total `(source, vertex)` bits set at the end of the sweep, the
    /// diagonal `(s, s)` bits included. Equals `lanes · n` iff every source
    /// reached every vertex.
    pub reached_bits: usize,
    /// The last time any bit newly set — `max` over the batch's reached
    /// off-diagonal pairs of `δ(s, v)`, or `0` when no vertex was newly
    /// reached.
    pub last_arrival: Time,
}

impl SweepStats {
    /// Did every lane reach every one of the `n` vertices?
    #[must_use]
    pub const fn all_reached(&self, n: usize) -> bool {
        self.reached_bits == self.lanes * n
    }

    /// Ordered `(source, vertex)` pairs, `source ≠ vertex`, the sweep did
    /// **not** connect (diagonal bits are always set, so they cancel).
    #[must_use]
    pub const fn unreached_pairs(&self, n: usize) -> usize {
        self.lanes * n - self.reached_bits
    }
}

/// One point query packed into a [`BatchSweeper::sweep_lanes`] pass.
///
/// A lane is a single-source foremost sweep with its own retirement
/// policy: a `target` lane retires the moment the target's bit commits
/// (its arrival is final — commits are non-decreasing in time), a
/// targetless lane stays live to its `horizon` collecting a whole
/// closure/distance row, and every lane retires when its frontier
/// saturates `saturation` vertices — the batched sweep's global
/// saturation exit, generalised per lane. A caller that knows the
/// source's static reachable set (e.g. its connected-component size)
/// tightens the bound with [`Lane::with_saturation`]; the default is
/// `n` (no outside knowledge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lane {
    /// Source vertex the lane sweeps from.
    pub source: NodeId,
    /// Vertex whose foremost arrival answers the lane, or `None` to keep
    /// the lane live to its horizon (row-shaped queries).
    pub target: Option<NodeId>,
    /// Inclusive label ceiling: the lane ignores labels greater than
    /// `horizon`, matching
    /// [`foremost_with_horizon`](crate::foremost::foremost_with_horizon)
    /// (clamped to the network lifetime).
    pub horizon: Time,
    /// The lane retires once its frontier holds this many vertices
    /// (clamped to `n`). Sound whenever it upper-bounds the number of
    /// vertices any journey from `source` can ever reach — once the
    /// frontier hits the bound no future bucket can commit a new bit,
    /// so every remaining answer is final.
    pub saturation: u32,
}

impl Lane {
    /// A `foremost(source → target)` lane with no horizon bound.
    #[must_use]
    pub const fn foremost(source: NodeId, target: NodeId) -> Self {
        Self {
            source,
            target: Some(target),
            horizon: NEVER,
            saturation: u32::MAX,
        }
    }

    /// A `reaches(source, target, ≤ by)` lane.
    #[must_use]
    pub const fn reaches(source: NodeId, target: NodeId, by: Time) -> Self {
        Self {
            source,
            target: Some(target),
            horizon: by,
            saturation: u32::MAX,
        }
    }

    /// A whole-row lane: sweep `source` to `horizon` with no target.
    #[must_use]
    pub const fn row(source: NodeId, horizon: Time) -> Self {
        Self {
            source,
            target: None,
            horizon,
            saturation: u32::MAX,
        }
    }

    /// Cap the lane's frontier at `bound` vertices — retire as saturated
    /// once that many are reached. `bound` must upper-bound the source's
    /// statically reachable set or answers may finalise early.
    #[must_use]
    pub const fn with_saturation(mut self, bound: u32) -> Self {
        self.saturation = bound;
        self
    }
}

/// What a [`BatchSweeper::sweep_lanes`] pass observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneStats {
    /// Number of lanes the pass carried.
    pub lanes: usize,
    /// Total `(lane, vertex)` bits committed, diagonal included.
    pub reached_bits: usize,
    /// The last time any bit newly set across the pass.
    pub last_arrival: Time,
    /// Occupied buckets the pass actually scanned.
    pub buckets_visited: usize,
    /// Lanes that retired before their horizon was exhausted — target
    /// found or frontier saturated (horizon expiry is not "early").
    pub retired_early: usize,
    /// Did the pass abandon the bucket walk because every lane had
    /// retired, with occupied buckets still unscanned?
    pub early_exit: bool,
}

/// Reusable scratch state of the batched multi-source sweep.
///
/// Construction is free; the first sweep sizes the internal frontier
/// buffers to the network and subsequent sweeps reuse them, so a Monte
/// Carlo loop that keeps one sweeper per worker performs no per-trial
/// allocation (see `ephemeral-core`'s allocation regression test).
///
/// ```
/// use ephemeral_graph::generators;
/// use ephemeral_temporal::engine::BatchSweeper;
/// use ephemeral_temporal::{LabelAssignment, TemporalNetwork, NEVER};
///
/// // 0—1 @1, 1—2 @2: source 0 reaches everyone, source 2 only vertex 1.
/// let tn = TemporalNetwork::new(
///     generators::path(3),
///     LabelAssignment::from_vecs(vec![vec![1], vec![2]]).unwrap(),
///     2,
/// )
/// .unwrap();
/// let mut sweeper = BatchSweeper::new();
/// let mut arrivals = vec![NEVER; 2 * 3];
/// let stats = sweeper.arrivals_into(&tn, &[0, 2], 0, &mut arrivals);
/// assert_eq!(arrivals, vec![0, 1, 2, NEVER, 2, 0]);
/// assert_eq!(stats.unreached_pairs(3), 1); // 2 never reaches 0
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchSweeper {
    /// Lanes that reached `v` strictly before the time being processed.
    before: Vec<u64>,
    /// Lanes newly arriving at `v` at the time being processed.
    delta: Vec<u64>,
    /// Vertices with a non-zero `delta` in the current bucket.
    touched: Vec<NodeId>,
    /// Per-vertex lane bits whose target is that vertex — the retirement
    /// index of [`BatchSweeper::sweep_lanes`] (empty between passes).
    tmask: Vec<u64>,
    /// Cooperative cancellation token checked at every bucket boundary
    /// (`None` = never fires).
    cancel: Option<CancelToken>,
}

impl BatchSweeper {
    /// A sweeper with empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or clear) the cooperative cancellation token checked at every
    /// bucket boundary of subsequent sweeps — the sweep grid's per-cell
    /// watchdog (`--cell-timeout`) installs the cell's token here.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Run one batched foremost sweep from `sources` (at most
    /// [`MAX_LANES`]), using labels strictly greater than `start_time`.
    /// `on_reach(v, lanes, t)` fires once per commit: `lanes` holds the
    /// source bits that first reached `v` at time `t` (bit `i` ↔
    /// `sources[i]`), in non-decreasing order of `t`.
    ///
    /// Duplicate sources are allowed (their lanes evolve identically).
    ///
    /// # Panics
    /// If `sources.len() > MAX_LANES` or any source is out of range.
    pub fn sweep(
        &mut self,
        tn: &TemporalNetwork,
        sources: &[NodeId],
        start_time: Time,
        on_reach: impl FnMut(NodeId, u64, Time),
    ) -> SweepStats {
        self.sweep_with_horizon(tn, sources, start_time, tn.lifetime(), on_reach)
    }

    /// [`BatchSweeper::sweep`] ignoring every label greater than `horizon`
    /// (the truncated index of the paper's Theorem 5 construction, matching
    /// `foremost_with_horizon`).
    ///
    /// # Panics
    /// If `sources.len() > MAX_LANES` or any source is out of range.
    pub fn sweep_with_horizon(
        &mut self,
        tn: &TemporalNetwork,
        sources: &[NodeId],
        start_time: Time,
        horizon: Time,
        mut on_reach: impl FnMut(NodeId, u64, Time),
    ) -> SweepStats {
        let n = tn.num_nodes();
        let lanes = sources.len();
        assert!(lanes <= MAX_LANES, "at most {MAX_LANES} sources per batch");
        self.before.clear();
        self.before.resize(n, 0);
        self.delta.clear();
        self.delta.resize(n, 0);
        self.touched.clear();
        for (lane, &s) in sources.iter().enumerate() {
            assert!((s as usize) < n, "source {s} out of range");
            self.before[s as usize] |= 1 << lane;
        }
        let target = lanes * n;
        let mut reached_bits = lanes;
        let mut last_arrival: Time = 0;
        let directed = tn.graph().is_directed();
        let last = horizon.min(tn.lifetime());
        let mut t = start_time.saturating_add(1);
        while t <= last && reached_bits < target {
            faults::hit(faults::site::ENGINE_BUCKET, u64::from(t));
            if let Some(c) = &self.cancel {
                c.checkpoint();
            }
            for &e in tn.edges_at(t) {
                let (u, v) = tn.graph().endpoints(e);
                let bu = self.before[u as usize];
                let bv = self.before[v as usize];
                // u -> v: lanes that left u before t and have not seen v.
                let forward = ornot_word(bu, bv);
                if forward != 0 {
                    if self.delta[v as usize] == 0 {
                        self.touched.push(v);
                    }
                    self.delta[v as usize] |= forward;
                }
                // v -> u for undirected edges.
                if !directed {
                    let backward = ornot_word(bv, bu);
                    if backward != 0 {
                        if self.delta[u as usize] == 0 {
                            self.touched.push(u);
                        }
                        self.delta[u as usize] |= backward;
                    }
                }
            }
            // Commit the bucket at once: a vertex first reached at t cannot
            // relay over another label-t edge, so `before` stays frozen
            // while the bucket is scanned.
            let mut touched = std::mem::take(&mut self.touched);
            for &v in &touched {
                let fresh = ornot_word(self.delta[v as usize], self.before[v as usize]);
                self.delta[v as usize] = 0;
                if fresh != 0 {
                    self.before[v as usize] |= fresh;
                    reached_bits += fresh.count_ones() as usize;
                    last_arrival = t;
                    on_reach(v, fresh, t);
                }
            }
            touched.clear();
            self.touched = touched;
            t += 1;
        }
        SweepStats {
            lanes,
            reached_bits,
            last_arrival,
        }
    }

    /// Run one lane-allocated pass: up to [`MAX_LANES`] independent point
    /// queries packed as lanes of a single walk over the occupied time
    /// buckets, each lane retiring the moment its own answer is final.
    ///
    /// `arrivals[i]` receives lane `i`'s foremost arrival at its target
    /// ([`NEVER`] when unreachable within the horizon, `start_time` when
    /// `target == source`), or stays [`NEVER`] for targetless row lanes —
    /// their answers stream through `on_reach(v, lanes, t)`, which fires
    /// exactly as in [`BatchSweeper::sweep`] for every commit of a lane
    /// that was live at the top of bucket `t`.
    ///
    /// Lanes are independent (lane `i`'s frontier never reads lane `j`'s
    /// bits), so masking retired lanes out of the propagation leaves every
    /// live lane's evolution bit-identical to a dedicated
    /// [`foremost_with_horizon`](crate::foremost::foremost_with_horizon)
    /// sweep — the per-lane early exit is pure work avoidance
    /// (`tests/session_proptests.rs` pins this differentially).
    ///
    /// # Panics
    /// If `lanes.len() > MAX_LANES`, `arrivals.len() != lanes.len()`, or
    /// any source/target is out of range.
    pub fn sweep_lanes(
        &mut self,
        tn: &TemporalNetwork,
        lanes: &[Lane],
        start_time: Time,
        arrivals: &mut [Time],
        mut on_reach: impl FnMut(NodeId, u64, Time),
    ) -> LaneStats {
        let n = tn.num_nodes();
        assert!(
            lanes.len() <= MAX_LANES,
            "at most {MAX_LANES} lanes per pass"
        );
        assert_eq!(arrivals.len(), lanes.len(), "one arrival slot per lane");
        self.before.clear();
        self.before.resize(n, 0);
        self.delta.clear();
        self.delta.resize(n, 0);
        self.touched.clear();
        self.tmask.clear();
        self.tmask.resize(n, 0);
        arrivals.fill(NEVER);
        let mut counts = [0usize; MAX_LANES];
        let mut sats = [usize::MAX; MAX_LANES];
        let mut active: u64 = 0;
        let mut max_horizon: Time = start_time;
        // Earliest horizon among lanes still active: buckets at or below
        // it cannot expire anything, so the per-bucket expiry scan only
        // runs when the walk actually crosses a lane's horizon.
        let mut min_horizon: Time = NEVER;
        let mut retired_early = 0usize;
        for (i, lane) in lanes.iter().enumerate() {
            assert!(
                (lane.source as usize) < n,
                "source {} out of range",
                lane.source
            );
            let bit = 1u64 << i;
            self.before[lane.source as usize] |= bit;
            counts[i] = 1;
            sats[i] = (lane.saturation as usize).min(n);
            match lane.target {
                Some(tv) => {
                    assert!((tv as usize) < n, "target {tv} out of range");
                    if tv == lane.source {
                        // Answered at setup: a source reaches itself at
                        // its start time, mirroring scalar `foremost`.
                        arrivals[i] = start_time;
                        continue;
                    }
                    if lane.horizon <= start_time {
                        continue; // no label can serve this lane
                    }
                    self.tmask[tv as usize] |= bit;
                }
                None => {
                    if lane.horizon <= start_time {
                        continue;
                    }
                }
            }
            if counts[i] >= sats[i] {
                continue; // saturated at setup (n == 1, or a unit bound)
            }
            active |= bit;
            max_horizon = max_horizon.max(lane.horizon.min(tn.lifetime()));
            min_horizon = min_horizon.min(lane.horizon);
        }
        let mut reached_bits = lanes.len();
        let mut last_arrival: Time = 0;
        let directed = tn.graph().is_directed();
        let occupied = tn.occupied_between(start_time, max_horizon);
        let mut buckets_visited = 0usize;
        let mut early_exit = false;
        for &t in occupied {
            if active == 0 {
                early_exit = true;
                break;
            }
            // Expire lanes whose horizon ended before this bucket; their
            // answers are final (commits at times ≤ horizon all happened).
            // `min_horizon` keeps the scan off the hot path: a retired
            // lane can leave it stale-low, which only costs a redundant
            // rescan, never a missed expiry.
            if t > min_horizon {
                let mut expiring = active;
                min_horizon = NEVER;
                while expiring != 0 {
                    let i = expiring.trailing_zeros() as usize;
                    expiring &= expiring - 1;
                    if lanes[i].horizon < t {
                        active &= !(1u64 << i);
                    } else {
                        min_horizon = min_horizon.min(lanes[i].horizon);
                    }
                }
                if active == 0 {
                    early_exit = true;
                    break;
                }
            }
            faults::hit(faults::site::ENGINE_BUCKET, u64::from(t));
            if let Some(c) = &self.cancel {
                c.checkpoint();
            }
            buckets_visited += 1;
            for &e in tn.edges_at(t) {
                let (u, v) = tn.graph().endpoints(e);
                let bu = self.before[u as usize];
                let bv = self.before[v as usize];
                let forward = ornot_word(bu, bv) & active;
                if forward != 0 {
                    if self.delta[v as usize] == 0 {
                        self.touched.push(v);
                    }
                    self.delta[v as usize] |= forward;
                }
                if !directed {
                    let backward = ornot_word(bv, bu) & active;
                    if backward != 0 {
                        if self.delta[u as usize] == 0 {
                            self.touched.push(u);
                        }
                        self.delta[u as usize] |= backward;
                    }
                }
            }
            // Whole-bucket commit, as in `sweep_with_horizon`. A lane that
            // retires mid-commit may still commit other bits accumulated
            // under this bucket's mask — harmless: its answer was final
            // the moment its retirement condition fired.
            let mut touched = std::mem::take(&mut self.touched);
            for &v in &touched {
                let fresh = ornot_word(self.delta[v as usize], self.before[v as usize]);
                self.delta[v as usize] = 0;
                if fresh != 0 {
                    self.before[v as usize] |= fresh;
                    reached_bits += fresh.count_ones() as usize;
                    last_arrival = t;
                    on_reach(v, fresh, t);
                    let hit = fresh & self.tmask[v as usize];
                    let mut iter = fresh;
                    while iter != 0 {
                        let i = iter.trailing_zeros() as usize;
                        iter &= iter - 1;
                        counts[i] += 1;
                        let bit = 1u64 << i;
                        if hit & bit != 0 {
                            arrivals[i] = t;
                            if active & bit != 0 {
                                active &= !bit;
                                retired_early += 1;
                            }
                        } else if counts[i] >= sats[i] && active & bit != 0 {
                            active &= !bit;
                            retired_early += 1;
                        }
                    }
                }
            }
            touched.clear();
            self.touched = touched;
        }
        self.tmask.clear();
        LaneStats {
            lanes: lanes.len(),
            reached_bits,
            last_arrival,
            buckets_visited,
            retired_early,
            early_exit,
        }
    }

    /// Sweep and record per-pair arrival times into `out`, laid out
    /// `out[lane · n + v] = δ(sources[lane], v)` with [`NEVER`] marking
    /// unreachable pairs and each source reporting its own `start_time` —
    /// lane-for-lane the `arrivals()` array of a scalar foremost run.
    ///
    /// # Panics
    /// If `out.len() != sources.len() · n`, or as [`BatchSweeper::sweep`].
    pub fn arrivals_into(
        &mut self,
        tn: &TemporalNetwork,
        sources: &[NodeId],
        start_time: Time,
        out: &mut [Time],
    ) -> SweepStats {
        let n = tn.num_nodes();
        assert_eq!(
            out.len(),
            sources.len() * n,
            "arrival buffer must hold sources × vertices entries"
        );
        out.fill(NEVER);
        for (lane, &s) in sources.iter().enumerate() {
            out[lane * n + s as usize] = start_time;
        }
        self.sweep(tn, sources, start_time, |v, mut lanes, t| {
            while lanes != 0 {
                let lane = lanes.trailing_zeros() as usize;
                out[lane * n + v as usize] = t;
                lanes &= lanes - 1;
            }
        })
    }

    /// The source lanes that reached `v` during the **most recent** sweep
    /// (bit `i` ↔ `sources[i]` of that call; sources count themselves).
    ///
    /// # Panics
    /// If `v` is out of range for the last swept network.
    #[inline]
    #[must_use]
    pub fn lanes_reaching(&self, v: NodeId) -> u64 {
        self.before[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foremost::{foremost, foremost_with_horizon};
    use crate::LabelAssignment;
    use ephemeral_graph::{generators, GraphBuilder};
    use ephemeral_rng::{RandomSource, SeedSequence};

    fn random_network(seed: u64, n: usize, directed: bool) -> TemporalNetwork {
        let mut rng = SeedSequence::new(seed).rng(0);
        let g = generators::gnp(n, 0.15, directed, &mut rng);
        let lifetime = (n as Time).max(4);
        let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
            vec![rng.range_u32(1, lifetime), rng.range_u32(1, lifetime)]
        })
        .unwrap();
        TemporalNetwork::new(g, labels, lifetime).unwrap()
    }

    fn scalar_arrivals(tn: &TemporalNetwork, sources: &[NodeId], start: Time) -> Vec<Time> {
        let n = tn.num_nodes();
        let mut out = Vec::with_capacity(sources.len() * n);
        for &s in sources {
            out.extend_from_slice(foremost(tn, s, start).arrivals());
        }
        out
    }

    #[test]
    fn batch_matches_scalar_on_a_path() {
        let g = generators::path(4);
        let labels = LabelAssignment::from_vecs(vec![vec![1], vec![2], vec![3]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 3).unwrap();
        let sources: Vec<NodeId> = (0..4).collect();
        let mut out = vec![NEVER; 16];
        let stats = BatchSweeper::new().arrivals_into(&tn, &sources, 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, &sources, 0));
        assert_eq!(stats.lanes, 4);
        assert_eq!(stats.last_arrival, 3);
    }

    #[test]
    fn batch_matches_scalar_on_random_networks() {
        // 70 vertices: a full 64-lane batch plus a 6-lane remainder.
        for seed in 0..8 {
            for directed in [false, true] {
                let n = 70usize;
                let tn = random_network(seed, n, directed);
                let mut sweeper = BatchSweeper::new();
                let mut out = Vec::new();
                for b in 0..batch_count(n) {
                    let sources: Vec<NodeId> = batch_range(n, b).collect();
                    let mut chunk = vec![0; sources.len() * n];
                    sweeper.arrivals_into(&tn, &sources, 0, &mut chunk);
                    out.extend(chunk);
                }
                let all: Vec<NodeId> = (0..n as NodeId).collect();
                assert_eq!(
                    out,
                    scalar_arrivals(&tn, &all, 0),
                    "seed {seed} directed {directed}"
                );
            }
        }
    }

    #[test]
    fn nonzero_start_time_matches_scalar() {
        let tn = random_network(3, 40, false);
        let sources: Vec<NodeId> = (0..40).collect();
        for start in [1, 5, 39] {
            let mut out = vec![0; 40 * 40];
            BatchSweeper::new().arrivals_into(&tn, &sources, start, &mut out);
            assert_eq!(out, scalar_arrivals(&tn, &sources, start), "start {start}");
        }
    }

    #[test]
    fn horizon_matches_scalar_horizon() {
        let tn = random_network(5, 30, false);
        let sources: Vec<NodeId> = (0..30).collect();
        let horizon = 7;
        let mut got = vec![NEVER; 30 * 30];
        for (lane, &s) in sources.iter().enumerate() {
            got[lane * 30 + s as usize] = 0;
        }
        let mut sweeper = BatchSweeper::new();
        sweeper.sweep_with_horizon(&tn, &sources, 0, horizon, |v, mut lanes, t| {
            while lanes != 0 {
                let lane = lanes.trailing_zeros() as usize;
                got[lane * 30 + v as usize] = t;
                lanes &= lanes - 1;
            }
        });
        let mut expected = Vec::new();
        for &s in &sources {
            expected.extend_from_slice(foremost_with_horizon(&tn, s, 0, horizon).arrivals());
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn arbitrary_source_subsets_work() {
        let tn = random_network(9, 50, true);
        let sources: Vec<NodeId> = vec![49, 0, 17, 17, 3]; // duplicates allowed
        let mut out = vec![0; 5 * 50];
        BatchSweeper::new().arrivals_into(&tn, &sources, 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, &sources, 0));
        // Duplicate lanes are bit-identical.
        assert_eq!(out[2 * 50..3 * 50], out[3 * 50..4 * 50]);
    }

    #[test]
    fn stats_count_unreached_pairs() {
        // Path 0—1—2 with decreasing labels: 0 reaches 1 only; 2 reaches all
        // of {1}? labels 2,1: from 2 edge 1-2@1 then 0-1@2 chains.
        let g = generators::path(3);
        let labels = LabelAssignment::from_vecs(vec![vec![2], vec![1]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 2).unwrap();
        let mut sweeper = BatchSweeper::new();
        let stats = sweeper.sweep(&tn, &[0, 1, 2], 0, |_, _, _| {});
        let mut expected_bits = 0;
        for s in 0..3 {
            expected_bits += foremost(&tn, s, 0).reached_count();
        }
        assert_eq!(stats.reached_bits, expected_bits);
        assert_eq!(stats.unreached_pairs(3), 9 - expected_bits);
        assert!(!stats.all_reached(3));
    }

    #[test]
    fn last_arrival_is_the_batch_diameter() {
        let tn = random_network(11, 45, false);
        let sources: Vec<NodeId> = (0..45).collect();
        let mut sweeper = BatchSweeper::new();
        let stats = sweeper.sweep(&tn, &sources, 0, |_, _, _| {});
        let mut max = 0;
        for s in 0..45 {
            for (v, &a) in foremost(&tn, s, 0).arrivals().iter().enumerate() {
                if v as NodeId != s && a != NEVER {
                    max = max.max(a);
                }
            }
        }
        assert_eq!(stats.last_arrival, max);
    }

    #[test]
    fn sweeper_reuse_across_networks_is_clean() {
        let mut sweeper = BatchSweeper::new();
        let tn1 = random_network(1, 60, false);
        let sources: Vec<NodeId> = (0..60).collect();
        let mut a1 = vec![0; 60 * 60];
        sweeper.arrivals_into(&tn1, &sources, 0, &mut a1);
        // A smaller, different network afterwards must not see stale bits.
        let tn2 = random_network(2, 33, true);
        let sources2: Vec<NodeId> = (0..33).collect();
        let mut a2 = vec![0; 33 * 33];
        sweeper.arrivals_into(&tn2, &sources2, 0, &mut a2);
        assert_eq!(a2, scalar_arrivals(&tn2, &sources2, 0));
        // And the big one still matches when re-swept.
        let mut a1b = vec![0; 60 * 60];
        sweeper.arrivals_into(&tn1, &sources, 0, &mut a1b);
        assert_eq!(a1, a1b);
    }

    #[test]
    fn lanes_reaching_exposes_the_closure_word() {
        let g = generators::path(3);
        let labels = LabelAssignment::from_vecs(vec![vec![1], vec![2]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 2).unwrap();
        let mut sweeper = BatchSweeper::new();
        sweeper.sweep(&tn, &[0, 1, 2], 0, |_, _, _| {});
        // Vertex 2 is reached by sources 0 (via 1) and 1, plus itself.
        assert_eq!(sweeper.lanes_reaching(2), 0b111);
        // Vertex 0 is reached only by source 0 and source 1 (edge 0-1 @1?
        // from 1, label 1 > 0 works).
        assert_eq!(sweeper.lanes_reaching(0), 0b011);
    }

    #[test]
    fn empty_sources_are_a_no_op() {
        let tn = random_network(4, 10, false);
        let mut sweeper = BatchSweeper::new();
        let stats = sweeper.sweep(&tn, &[], 0, |_, _, _| panic!("no events"));
        assert_eq!(stats.lanes, 0);
        assert_eq!(stats.reached_bits, 0);
        assert_eq!(stats.last_arrival, 0);
        assert!(stats.all_reached(10), "0 lanes trivially cover 0 bits");
    }

    #[test]
    fn directed_arcs_are_one_way_in_batch() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let tn = TemporalNetwork::new(g, LabelAssignment::single(vec![1, 2]).unwrap(), 2).unwrap();
        let mut out = vec![0; 3 * 3];
        BatchSweeper::new().arrivals_into(&tn, &[0, 1, 2], 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, &[0, 1, 2], 0));
        assert_eq!(out[0..3], [0, 1, 2]); // 0 reaches everyone in order
        assert_eq!(out[6..9], [NEVER, NEVER, 0]); // 2 reaches only itself
    }

    #[test]
    fn batch_helpers_cover_all_sources() {
        assert_eq!(batch_count(0), 0);
        assert_eq!(batch_count(1), 1);
        assert_eq!(batch_count(64), 1);
        assert_eq!(batch_count(65), 2);
        assert_eq!(batch_range(65, 0), 0..64);
        assert_eq!(batch_range(65, 1), 64..65);
        let n = 150;
        let mut seen = Vec::new();
        for b in 0..batch_count(n) {
            seen.extend(batch_range(n, b));
        }
        assert_eq!(seen, (0..n as NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn lane_pass_matches_scalar_foremost() {
        for seed in 0..6 {
            for directed in [false, true] {
                let tn = random_network(seed, 48, directed);
                let n = tn.num_nodes();
                let mut rng = SeedSequence::new(seed ^ 0xbeef).rng(1);
                let lanes: Vec<Lane> = (0..40)
                    .map(|_| {
                        let source = rng.range_u32(0, n as u32 - 1);
                        let target = rng.range_u32(0, n as u32 - 1);
                        let horizon = if rng.range_u32(0, 2) == 0 {
                            NEVER
                        } else {
                            rng.range_u32(1, tn.lifetime())
                        };
                        Lane {
                            source,
                            target: Some(target),
                            horizon,
                            saturation: u32::MAX,
                        }
                    })
                    .collect();
                let mut got = vec![0; lanes.len()];
                BatchSweeper::new().sweep_lanes(&tn, &lanes, 0, &mut got, |_, _, _| {});
                for (i, lane) in lanes.iter().enumerate() {
                    let run = foremost_with_horizon(&tn, lane.source, 0, lane.horizon);
                    let want = run.arrival(lane.target.unwrap()).unwrap_or(NEVER);
                    assert_eq!(
                        got[i], want,
                        "seed {seed} directed {directed} lane {i}: {lane:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn lane_self_targets_and_tight_horizons_answer_at_setup() {
        let tn = random_network(2, 20, false);
        let lanes = vec![
            Lane::foremost(7, 7),
            Lane::reaches(3, 9, 0), // horizon ≤ start: nothing can serve it
            Lane::reaches(3, 3, 0), // but a self-target still answers
        ];
        let mut got = vec![0; 3];
        let stats = BatchSweeper::new().sweep_lanes(&tn, &lanes, 0, &mut got, |_, _, _| {});
        assert_eq!(got, vec![0, NEVER, 0]);
        assert_eq!(stats.buckets_visited, 0, "no lane needed a bucket");
    }

    #[test]
    fn row_lanes_stream_the_same_commits_as_a_full_sweep() {
        let tn = random_network(13, 50, false);
        let n = tn.num_nodes();
        let sources: Vec<NodeId> = (0..50).collect();
        let lanes: Vec<Lane> = sources.iter().map(|&s| Lane::row(s, NEVER)).collect();
        let mut got = vec![NEVER; lanes.len() * n];
        for (i, &s) in sources.iter().enumerate() {
            got[i * n + s as usize] = 0;
        }
        let mut arrivals = vec![0; lanes.len()];
        let stats =
            BatchSweeper::new().sweep_lanes(&tn, &lanes, 0, &mut arrivals, |v, mut bits, t| {
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    got[i * n + v as usize] = t;
                }
            });
        assert_eq!(got, scalar_arrivals(&tn, &sources, 0));
        assert!(
            arrivals.iter().all(|&a| a == NEVER),
            "row lanes have no target"
        );
        assert_eq!(stats.lanes, 50);
    }

    #[test]
    fn retired_lanes_stop_the_pass_early() {
        // Path with strictly increasing labels: querying the immediate
        // neighbour of each source retires every lane after its own edge
        // fires, long before the last occupied bucket.
        let n = 40usize;
        let g = generators::path(n);
        let labels = LabelAssignment::from_fn(n - 1, |e| vec![(e as Time) + 1]).unwrap();
        let tn = TemporalNetwork::new(g, labels, n as Time).unwrap();
        let lanes = vec![Lane::foremost(0, 1), Lane::foremost(1, 2)];
        let mut got = vec![0; 2];
        let stats = BatchSweeper::new().sweep_lanes(&tn, &lanes, 0, &mut got, |_, _, _| {});
        assert_eq!(got, vec![1, 2]);
        assert_eq!(stats.retired_early, 2);
        assert!(stats.early_exit);
        assert!(
            stats.buckets_visited <= 2,
            "pass must stop once both lanes retire, saw {}",
            stats.buckets_visited
        );
    }

    #[test]
    fn horizon_expired_lanes_report_horizon_answers() {
        let tn = random_network(21, 30, false);
        // Every query bounded at horizon 3: lanes whose journey needs a
        // later label must come back NEVER, exactly as the scalar oracle.
        let lanes: Vec<Lane> = (0..30).map(|v| Lane::reaches(0, v, 3)).collect();
        let mut got = vec![0; lanes.len()];
        BatchSweeper::new().sweep_lanes(&tn, &lanes, 0, &mut got, |_, _, _| {});
        let run = foremost_with_horizon(&tn, 0, 0, 3);
        for (v, &arrival) in got.iter().enumerate() {
            assert_eq!(arrival, run.arrival(v as NodeId).unwrap_or(NEVER), "v {v}");
        }
    }

    #[test]
    #[should_panic(expected = "at most 64 lanes")]
    fn too_many_lanes_panics() {
        let tn = random_network(1, 80, false);
        let lanes: Vec<Lane> = (0..65).map(|v| Lane::foremost(0, v)).collect();
        let mut got = vec![0; 65];
        let _ = BatchSweeper::new().sweep_lanes(&tn, &lanes, 0, &mut got, |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "at most 64 sources")]
    fn too_many_sources_panics() {
        let tn = random_network(1, 80, false);
        let sources: Vec<NodeId> = (0..65).collect();
        let _ = BatchSweeper::new().sweep(&tn, &sources, 0, |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let tn = random_network(1, 5, false);
        let _ = BatchSweeper::new().sweep(&tn, &[9], 0, |_, _, _| {});
    }
}
