//! The time-expanded graph and disjoint-journey counting — the substrate of
//! Kempe, Kleinberg & Kumar (STOC'00), the paper's reference \[19\] and the
//! direct ancestor of its single-label model.
//!
//! The **time-expanded graph** of a temporal network `(G, L)` with lifetime
//! `a` has one copy `(v, t)` of every vertex per time `t ∈ {0, …, a}`,
//! *wait* arcs `(v, t) → (v, t+1)`, and a *travel* arc
//! `(u, t−1) → (v, t)` for every time-edge `(u, v, t)`. Journeys of the
//! temporal network correspond exactly to `(s,0) → (t,a)` paths that use at
//! least one travel arc; putting unit capacity on travel arcs and infinite
//! capacity on wait arcs makes the max-flow value the maximum number of
//! **time-edge-disjoint journeys** (flow integrality) — the temporal
//! analogue of Menger's edge version, which Kempe et al. use to study
//! connectivity and which survives in temporal graphs (unlike the vertex
//! version, as their counterexample shows).

use crate::network::TemporalNetwork;
use ephemeral_graph::NodeId;

/// A small max-flow network (adjacency lists with residual arcs).
#[derive(Debug, Clone)]
struct FlowNetwork {
    /// Per-node list of arc indices.
    adj: Vec<Vec<u32>>,
    /// Arc targets.
    to: Vec<u32>,
    /// Residual capacities (arc `i` and its reverse `i ^ 1`).
    cap: Vec<u32>,
}

impl FlowNetwork {
    fn new(nodes: usize) -> Self {
        Self {
            adj: vec![Vec::new(); nodes],
            to: Vec::new(),
            cap: Vec::new(),
        }
    }

    fn add_arc(&mut self, u: u32, v: u32, capacity: u32) {
        let idx = self.to.len() as u32;
        self.adj[u as usize].push(idx);
        self.to.push(v);
        self.cap.push(capacity);
        self.adj[v as usize].push(idx + 1);
        self.to.push(u);
        self.cap.push(0);
    }

    /// Edmonds–Karp (BFS augmenting paths).
    fn max_flow(&mut self, source: u32, sink: u32) -> u32 {
        let n = self.adj.len();
        let mut flow = 0u32;
        let mut parent_arc = vec![u32::MAX; n];
        loop {
            for p in parent_arc.iter_mut() {
                *p = u32::MAX;
            }
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(source);
            parent_arc[source as usize] = u32::MAX - 1; // visited marker
            let mut found = false;
            'bfs: while let Some(u) = queue.pop_front() {
                for &a in &self.adj[u as usize] {
                    let v = self.to[a as usize];
                    if self.cap[a as usize] > 0 && parent_arc[v as usize] == u32::MAX {
                        parent_arc[v as usize] = a;
                        if v == sink {
                            found = true;
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !found {
                return flow;
            }
            // Bottleneck along the path.
            let mut bottleneck = u32::MAX;
            let mut v = sink;
            while v != source {
                let a = parent_arc[v as usize];
                bottleneck = bottleneck.min(self.cap[a as usize]);
                v = self.to[(a ^ 1) as usize];
            }
            let mut v = sink;
            while v != source {
                let a = parent_arc[v as usize];
                self.cap[a as usize] -= bottleneck;
                self.cap[(a ^ 1) as usize] += bottleneck;
                v = self.to[(a ^ 1) as usize];
            }
            flow += bottleneck;
        }
    }
}

/// Size accounting for an expansion (useful to predict memory before
/// building).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpansionSize {
    /// Nodes of the time-expanded graph: `n · (a + 1)`.
    pub nodes: usize,
    /// Wait arcs: `n · a`.
    pub wait_arcs: usize,
    /// Travel arcs: `M` (`2M` for undirected networks).
    pub travel_arcs: usize,
}

/// Predict the size of the time-expanded graph of `tn`.
#[must_use]
pub fn expansion_size(tn: &TemporalNetwork) -> ExpansionSize {
    let n = tn.num_nodes();
    let a = tn.lifetime() as usize;
    let travel = if tn.graph().is_directed() {
        tn.num_time_edges()
    } else {
        2 * tn.num_time_edges()
    };
    ExpansionSize {
        nodes: n * (a + 1),
        wait_arcs: n * a,
        travel_arcs: travel,
    }
}

/// Maximum number of **time-edge-disjoint** `(s, t)`-journeys, via unit-
/// capacity max-flow on the time-expanded graph. Each time-edge (one
/// direction of it, for undirected networks) can be used by at most one
/// journey; waiting at a vertex is unrestricted.
///
/// ```
/// use ephemeral_graph::generators;
/// use ephemeral_temporal::{expanded::max_disjoint_journeys, LabelAssignment, TemporalNetwork};
///
/// // One edge, three availability moments: three disjoint one-hop journeys.
/// let tn = TemporalNetwork::new(
///     generators::path(2),
///     LabelAssignment::from_vecs(vec![vec![1, 2, 3]]).unwrap(),
///     3,
/// ).unwrap();
/// assert_eq!(max_disjoint_journeys(&tn, 0, 1), 3);
/// ```
///
/// Complexity: `O(F · (n·a + M))` for flow value `F` — fine for the
/// analysis-sized instances this is meant for (`n·a ≲ 10⁶`).
///
/// # Panics
/// If `s == t` or either endpoint is out of range.
#[must_use]
pub fn max_disjoint_journeys(tn: &TemporalNetwork, s: NodeId, t: NodeId) -> u32 {
    let n = tn.num_nodes();
    assert!(
        (s as usize) < n && (t as usize) < n,
        "endpoints out of range"
    );
    assert_ne!(s, t, "disjoint journeys need distinct endpoints");
    let a = tn.lifetime() as usize;
    let layer = |v: NodeId, time: usize| -> u32 { (time * n + v as usize) as u32 };
    let mut net = FlowNetwork::new(n * (a + 1));
    // Wait arcs (infinite capacity ≈ u32::MAX/2 to avoid overflow).
    const UNBOUNDED: u32 = u32::MAX / 2;
    for time in 0..a {
        for v in 0..n as NodeId {
            net.add_arc(layer(v, time), layer(v, time + 1), UNBOUNDED);
        }
    }
    // Travel arcs with unit capacity.
    let directed = tn.graph().is_directed();
    for time in 1..=a {
        for &e in tn.edges_at(time as u32) {
            let (u, v) = tn.graph().endpoints(e);
            net.add_arc(layer(u, time - 1), layer(v, time), 1);
            if !directed {
                net.add_arc(layer(v, time - 1), layer(u, time), 1);
            }
        }
    }
    net.max_flow(layer(s, 0), layer(t, a))
}

/// Does at least one `(s, t)`-journey exist, decided on the time-expanded
/// graph? (Differential-testing twin of the foremost sweep.)
#[must_use]
pub fn journey_exists_expanded(tn: &TemporalNetwork, s: NodeId, t: NodeId) -> bool {
    max_disjoint_journeys(tn, s, t) > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foremost::foremost;
    use crate::LabelAssignment;
    use ephemeral_graph::{generators, GraphBuilder};
    use ephemeral_rng::{RandomSource, SeedSequence};

    fn path_network(labels: Vec<Vec<u32>>, lifetime: u32) -> TemporalNetwork {
        let g = generators::path(labels.len() + 1);
        TemporalNetwork::new(g, LabelAssignment::from_vecs(labels).unwrap(), lifetime).unwrap()
    }

    #[test]
    fn single_path_has_one_disjoint_journey() {
        let tn = path_network(vec![vec![1], vec![2], vec![3]], 3);
        assert_eq!(max_disjoint_journeys(&tn, 0, 3), 1);
        assert!(journey_exists_expanded(&tn, 0, 3));
    }

    #[test]
    fn blocked_path_has_zero() {
        let tn = path_network(vec![vec![2], vec![1]], 2);
        assert_eq!(max_disjoint_journeys(&tn, 0, 2), 0);
        assert!(!journey_exists_expanded(&tn, 0, 2));
    }

    #[test]
    fn multi_labels_on_one_edge_give_parallel_journeys() {
        // A single edge with 3 labels supports 3 time-edge-disjoint
        // one-hop journeys.
        let tn = path_network(vec![vec![1, 2, 3]], 3);
        assert_eq!(max_disjoint_journeys(&tn, 0, 1), 3);
    }

    #[test]
    fn bottleneck_edge_limits_the_count() {
        // 0—1 has 3 labels, 1—2 has 1 usable label: the cut at 1—2 binds.
        let tn = path_network(vec![vec![1, 2, 3], vec![4]], 4);
        assert_eq!(max_disjoint_journeys(&tn, 0, 2), 1);
    }

    #[test]
    fn two_vertex_disjoint_routes_count_twice() {
        // A 4-cycle with increasing labels both ways around.
        let g = generators::cycle(4); // edges 0-1,1-2,2-3,3-0
        let labels = LabelAssignment::from_vecs(vec![vec![1], vec![2], vec![2], vec![1]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 2).unwrap();
        // 0→2 via 0-1@1,1-2@2 and via 0-3@1,3-2@2.
        assert_eq!(max_disjoint_journeys(&tn, 0, 2), 2);
    }

    #[test]
    fn star_two_split_journey_is_found() {
        // The paper's Figure 2 object: u1—c at {1}, c—u2 at {n/2+1}.
        let g = generators::star(3); // centre 0, leaves 1, 2
        let labels = LabelAssignment::from_vecs(vec![vec![1], vec![3]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 4).unwrap();
        assert_eq!(max_disjoint_journeys(&tn, 1, 2), 1);
        // And in the reverse direction labels decrease: impossible.
        assert_eq!(max_disjoint_journeys(&tn, 2, 1), 0);
    }

    #[test]
    fn existence_agrees_with_foremost_on_random_instances() {
        let seq = SeedSequence::new(777);
        for trial in 0..25u64 {
            let mut rng = seq.rng(trial);
            let n = 4 + rng.index(8);
            let mut b = GraphBuilder::new_undirected(n);
            b.dedup_edges();
            for v in 1..n as u32 {
                b.add_edge(rng.bounded_u32(v), v);
            }
            for _ in 0..n {
                let u = rng.bounded_u32(n as u32);
                let v = rng.bounded_u32(n as u32);
                if u != v {
                    b.add_edge(u, v);
                }
            }
            let g = b.build().unwrap();
            let lifetime = 8;
            let labels =
                LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, lifetime)])
                    .unwrap();
            let tn = TemporalNetwork::new(g, labels, lifetime).unwrap();
            let run = foremost(&tn, 0, 0);
            for t in 1..n as u32 {
                assert_eq!(
                    run.reached(t),
                    journey_exists_expanded(&tn, 0, t),
                    "trial {trial}, target {t}"
                );
            }
        }
    }

    #[test]
    fn directed_clique_has_many_disjoint_journeys() {
        // In a URT-like clique every label is distinct-ish; between any two
        // vertices there are at least a few disjoint routes.
        let g = generators::clique(8, true);
        let m = g.num_edges();
        let labels: Vec<u32> = (0..m as u32).map(|i| 1 + (i % 8)).collect();
        let tn = TemporalNetwork::new(g, LabelAssignment::single(labels).unwrap(), 8).unwrap();
        let k = max_disjoint_journeys(&tn, 0, 7);
        assert!(k >= 2, "expected multiple disjoint journeys, got {k}");
        // Never more than the direct out-degree bound.
        assert!(k <= 7);
    }

    #[test]
    fn expansion_size_accounting() {
        let tn = path_network(vec![vec![1, 2], vec![3]], 4);
        let s = expansion_size(&tn);
        assert_eq!(s.nodes, 3 * 5);
        assert_eq!(s.wait_arcs, 3 * 4);
        assert_eq!(s.travel_arcs, 2 * 3); // undirected: both directions
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn same_endpoints_panic() {
        let tn = path_network(vec![vec![1]], 1);
        let _ = max_disjoint_journeys(&tn, 0, 0);
    }
}
