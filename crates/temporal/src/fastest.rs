//! Fastest (minimum-duration) journeys.
//!
//! The classical third journey flavour alongside foremost and
//! latest-departure (Bui-Xuan, Ferreira & Jarry 2003, cited by the paper as
//! the continuous-interval relatives). A fastest `(s, t)`-journey minimises
//! `arrival − departure + 1`, the number of time steps spent en route.
//!
//! Implementation: for every candidate departure label `d` on an edge
//! incident to `s` (any journey's first label is one of those), run a
//! foremost sweep restricted to labels `≥ d` and take the best
//! `arrival − d + 1`. For the optimal candidate the restricted foremost
//! journey departs exactly at `d`, so the minimum over candidates is exact;
//! cost is `O(deg(s) · (M + a))`.

use crate::foremost::foremost;
use crate::journey::Journey;
use crate::network::TemporalNetwork;
use crate::Time;
use ephemeral_graph::NodeId;

/// A fastest-journey query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastestResult {
    /// Minimum duration `arrival − departure + 1`.
    pub duration: Time,
    /// Departure label achieving it.
    pub departure: Time,
    /// Arrival label achieving it.
    pub arrival: Time,
    /// One fastest journey realising the bound.
    pub journey: Journey,
}

/// All candidate departure labels out of `s` (sorted, deduplicated).
fn departure_candidates(tn: &TemporalNetwork, s: NodeId) -> Vec<Time> {
    let mut ds = Vec::new();
    let (_, edge_ids) = tn.graph().out_adjacency(s);
    for &e in edge_ids {
        ds.extend_from_slice(tn.labels(e));
    }
    ds.sort_unstable();
    ds.dedup();
    ds
}

/// Fastest journey from `s` to `t`, or `None` if no journey exists.
///
/// # Panics
/// If `s` or `t` is out of range, or `s == t` (the trivial journey has no
/// duration).
#[must_use]
pub fn fastest_journey(tn: &TemporalNetwork, s: NodeId, t: NodeId) -> Option<FastestResult> {
    assert_ne!(s, t, "fastest journey of a vertex to itself is trivial");
    let mut best: Option<FastestResult> = None;
    for d in departure_candidates(tn, s) {
        let run = foremost(tn, s, d - 1);
        let Some(arrival) = run.arrival(t) else {
            continue;
        };
        let duration = arrival - d + 1;
        if best.as_ref().is_none_or(|b| duration < b.duration) {
            let journey = run.journey_to(t).expect("arrival implies a journey");
            // The journey's real departure may exceed the candidate d; its
            // true duration is then even smaller and will be (or was)
            // found at its own candidate. Store the journey's true figures.
            let true_duration = journey.duration();
            let true_departure = journey.departure();
            best = Some(FastestResult {
                duration: true_duration.min(duration),
                departure: true_departure,
                arrival,
                journey,
            });
        }
    }
    best
}

/// Just the minimum duration (see [`fastest_journey`]).
#[must_use]
pub fn fastest_duration(tn: &TemporalNetwork, s: NodeId, t: NodeId) -> Option<Time> {
    fastest_journey(tn, s, t).map(|r| r.duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelAssignment;
    use ephemeral_graph::generators;

    fn path_network(labels: Vec<Vec<Time>>, lifetime: Time) -> TemporalNetwork {
        let g = generators::path(labels.len() + 1);
        TemporalNetwork::new(g, LabelAssignment::from_vecs(labels).unwrap(), lifetime).unwrap()
    }

    #[test]
    fn single_hop_duration_is_one() {
        let tn = path_network(vec![vec![4]], 4);
        let r = fastest_journey(&tn, 0, 1).unwrap();
        assert_eq!(r.duration, 1);
        assert_eq!(r.departure, 4);
        assert_eq!(r.arrival, 4);
        assert_eq!(r.journey.hops(), 1);
    }

    #[test]
    fn late_tight_window_beats_early_loose_one() {
        // 0—1 at {1, 10}, 1—2 at {5, 11}: departing at 1 arrives at 5
        // (duration 5); departing at 10 arrives at 11 (duration 2).
        let tn = path_network(vec![vec![1, 10], vec![5, 11]], 11);
        let r = fastest_journey(&tn, 0, 2).unwrap();
        assert_eq!(r.duration, 2);
        assert_eq!(r.departure, 10);
        assert_eq!(r.arrival, 11);
        assert!(r.journey.is_realizable_in(&tn));
    }

    #[test]
    fn foremost_is_not_always_fastest() {
        let tn = path_network(vec![vec![1, 10], vec![5, 11]], 11);
        let foremost_arrival = crate::foremost::foremost(&tn, 0, 0).arrival(2).unwrap();
        assert_eq!(foremost_arrival, 5); // foremost arrives at 5…
        assert_eq!(fastest_duration(&tn, 0, 2), Some(2)); // …but takes 5 steps
    }

    #[test]
    fn unreachable_gives_none() {
        let tn = path_network(vec![vec![2], vec![1]], 2);
        assert!(fastest_journey(&tn, 0, 2).is_none());
        assert_eq!(fastest_duration(&tn, 0, 2), None);
    }

    #[test]
    fn exhaustive_check_on_small_instance() {
        // Brute-force all journeys on a 4-cycle with two labels per edge and
        // compare minimum duration.
        let g = generators::cycle(4);
        let labels =
            LabelAssignment::from_vecs(vec![vec![1, 5], vec![2, 6], vec![3, 7], vec![4, 8]])
                .unwrap();
        let tn = TemporalNetwork::new(g, labels, 8).unwrap();

        // Enumerate journeys by DFS over time-edges (tiny instance).
        fn dfs(
            tn: &TemporalNetwork,
            cur: u32,
            target: u32,
            last: Time,
            depart: Time,
            best: &mut Option<Time>,
        ) {
            if cur == target && last > 0 {
                let dur = last - depart + 1;
                if best.is_none() || dur < best.unwrap() {
                    *best = Some(dur);
                }
                return; // extending past the target never shortens duration
            }
            let (nbrs, eids) = tn.graph().out_adjacency(cur);
            for (&v, &e) in nbrs.iter().zip(eids) {
                for &l in tn.labels(e) {
                    if l > last {
                        let d0 = if last == 0 { l } else { depart };
                        dfs(tn, v, target, l, d0, best);
                    }
                }
            }
        }

        for s in 0..4u32 {
            for t in 0..4u32 {
                if s == t {
                    continue;
                }
                let mut brute: Option<Time> = None;
                dfs(&tn, s, t, 0, 0, &mut brute);
                assert_eq!(fastest_duration(&tn, s, t), brute, "pair ({s},{t})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "trivial")]
    fn same_endpoints_panic() {
        let tn = path_network(vec![vec![1]], 1);
        let _ = fastest_journey(&tn, 0, 0);
    }
}
