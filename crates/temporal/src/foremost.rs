//! Foremost (earliest-arrival) journeys — Definition 3 of the paper.
//!
//! The sweep processes the network's time-edges in label order via the
//! bucket index: when time `t` is processed, an edge `(u, v)` available at
//! `t` extends any journey that reached `u` strictly before `t`. Because a
//! node first reached *at* time `t` can never use another label-`t` edge,
//! in-bucket processing order is irrelevant and the sweep is exact in
//! `O(M + a)` time for a single source.

use crate::journey::{Journey, TimeEdge};
use crate::network::TemporalNetwork;
use crate::{Time, NEVER};
use ephemeral_graph::{NodeId, INVALID_NODE};

/// The result of a single-source foremost sweep: earliest arrival times and
/// predecessor pointers for journey reconstruction.
#[derive(Debug, Clone)]
pub struct ForemostRun {
    source: NodeId,
    start_time: Time,
    arrival: Vec<Time>,
    parent: Vec<NodeId>,
}

impl ForemostRun {
    /// The source vertex.
    #[must_use]
    pub const fn source(&self) -> NodeId {
        self.source
    }

    /// The start time `t₀` (journeys use labels `> t₀`).
    #[must_use]
    pub const fn start_time(&self) -> Time {
        self.start_time
    }

    /// Earliest arrival at `v`, or `None` if no journey exists. The source
    /// itself reports its start time.
    #[must_use]
    pub fn arrival(&self, v: NodeId) -> Option<Time> {
        let t = self.arrival[v as usize];
        (t != NEVER).then_some(t)
    }

    /// Raw arrival array ([`NEVER`] marks unreachable) — the paper's
    /// temporal distances `δ(s, ·)` when `start_time == 0`.
    #[must_use]
    pub fn arrivals(&self) -> &[Time] {
        &self.arrival
    }

    /// Was `v` reached?
    #[must_use]
    pub fn reached(&self, v: NodeId) -> bool {
        self.arrival[v as usize] != NEVER
    }

    /// How many vertices were reached (including the source)?
    #[must_use]
    pub fn reached_count(&self) -> usize {
        self.arrival.iter().filter(|&&t| t != NEVER).count()
    }

    /// Reconstruct a foremost journey to `v` (`None` if unreachable or
    /// `v == source`). The returned journey's arrival equals
    /// `self.arrival(v)` and it is always strictly-increasing and chained
    /// (enforced by [`Journey::new`]).
    #[must_use]
    pub fn journey_to(&self, v: NodeId) -> Option<Journey> {
        if v == self.source || self.arrival[v as usize] == NEVER {
            return None;
        }
        let mut steps = Vec::new();
        let mut cur = v;
        while cur != self.source {
            let p = self.parent[cur as usize];
            debug_assert_ne!(p, INVALID_NODE);
            steps.push(TimeEdge {
                from: p,
                to: cur,
                time: self.arrival[cur as usize],
            });
            cur = p;
        }
        steps.reverse();
        Some(Journey::new(steps).expect("sweep invariants produce valid journeys"))
    }
}

/// Single-source foremost sweep from `source`, using labels strictly greater
/// than `start_time`.
///
/// ```
/// use ephemeral_graph::generators;
/// use ephemeral_temporal::{foremost::foremost, LabelAssignment, TemporalNetwork};
///
/// // 0—1 @2, 1—2 @5: the foremost journey to 2 arrives at 5.
/// let tn = TemporalNetwork::new(
///     generators::path(3),
///     LabelAssignment::from_vecs(vec![vec![2], vec![5]]).unwrap(),
///     5,
/// ).unwrap();
/// let run = foremost(&tn, 0, 0);
/// assert_eq!(run.arrival(2), Some(5));
/// assert_eq!(run.journey_to(2).unwrap().to_string(), "0 -[2]-> 1 -[5]-> 2");
/// ```
///
/// # Panics
/// If `source` is out of range.
#[must_use]
pub fn foremost(tn: &TemporalNetwork, source: NodeId, start_time: Time) -> ForemostRun {
    foremost_with_horizon(tn, source, start_time, tn.lifetime())
}

/// Foremost sweep that ignores every label greater than `horizon` — the
/// "consider only the arcs with labels up to k" construction of the paper's
/// Theorem 5 proof, and a mild optimisation when only early arrivals matter.
///
/// # Panics
/// If `source` is out of range.
#[must_use]
pub fn foremost_with_horizon(
    tn: &TemporalNetwork,
    source: NodeId,
    start_time: Time,
    horizon: Time,
) -> ForemostRun {
    let n = tn.num_nodes();
    assert!((source as usize) < n, "source {source} out of range");
    let directed = tn.graph().is_directed();
    let mut arrival = vec![NEVER; n];
    let mut parent = vec![INVALID_NODE; n];
    arrival[source as usize] = start_time;
    let mut reached = 1usize;
    let last = horizon.min(tn.lifetime());
    let mut t = start_time.saturating_add(1);
    while t <= last {
        for &e in tn.edges_at(t) {
            let (u, v) = tn.graph().endpoints(e);
            // u -> v
            if arrival[u as usize] < t && arrival[v as usize] > t {
                arrival[v as usize] = t;
                parent[v as usize] = u;
                reached += 1;
            }
            // v -> u for undirected edges
            if !directed && arrival[v as usize] < t && arrival[u as usize] > t {
                arrival[u as usize] = t;
                parent[u as usize] = v;
                reached += 1;
            }
        }
        if reached == n {
            break;
        }
        t += 1;
    }
    ForemostRun {
        source,
        start_time,
        arrival,
        parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelAssignment;
    use ephemeral_graph::generators;
    use ephemeral_graph::GraphBuilder;

    fn path_network(labels: Vec<Vec<Time>>, lifetime: Time) -> TemporalNetwork {
        let g = generators::path(labels.len() + 1);
        TemporalNetwork::new(g, LabelAssignment::from_vecs(labels).unwrap(), lifetime).unwrap()
    }

    #[test]
    fn increasing_labels_carry_through() {
        let tn = path_network(vec![vec![1], vec![2], vec![3]], 3);
        let run = foremost(&tn, 0, 0);
        assert_eq!(run.arrivals(), &[0, 1, 2, 3]);
        assert_eq!(run.reached_count(), 4);
    }

    #[test]
    fn decreasing_labels_block_journeys() {
        let tn = path_network(vec![vec![3], vec![2], vec![1]], 3);
        let run = foremost(&tn, 0, 0);
        assert_eq!(run.arrival(1), Some(3));
        assert_eq!(run.arrival(2), None);
        assert_eq!(run.arrival(3), None);
        assert_eq!(run.reached_count(), 2);
    }

    #[test]
    fn equal_labels_cannot_chain() {
        let tn = path_network(vec![vec![2], vec![2]], 3);
        let run = foremost(&tn, 0, 0);
        assert_eq!(run.arrival(1), Some(2));
        assert_eq!(run.arrival(2), None);
    }

    #[test]
    fn multi_labels_offer_choices() {
        // 0—1 at {1, 4}, 1—2 at {2}: must leave at 1 to make the connection.
        let tn = path_network(vec![vec![1, 4], vec![2]], 4);
        let run = foremost(&tn, 0, 0);
        assert_eq!(run.arrival(2), Some(2));
        // Starting after time 1, only the label-4 copy of 0—1 remains and
        // the connection is missed.
        let late = foremost(&tn, 0, 1);
        assert_eq!(late.arrival(1), Some(4));
        assert_eq!(late.arrival(2), None);
    }

    #[test]
    fn start_time_excludes_equal_label() {
        let tn = path_network(vec![vec![2]], 2);
        let run = foremost(&tn, 0, 2);
        assert_eq!(run.arrival(1), None);
    }

    #[test]
    fn directed_arcs_are_one_way() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let tn = TemporalNetwork::new(g, LabelAssignment::single(vec![1, 2]).unwrap(), 2).unwrap();
        assert_eq!(foremost(&tn, 0, 0).arrival(2), Some(2));
        assert_eq!(foremost(&tn, 2, 0).reached_count(), 1);
    }

    #[test]
    fn undirected_edges_work_both_ways() {
        let tn = path_network(vec![vec![1], vec![2]], 2);
        let run = foremost(&tn, 2, 0);
        assert_eq!(run.arrival(1), Some(2));
        // 1—0 has label 1 < 2: cannot continue.
        assert_eq!(run.arrival(0), None);
    }

    #[test]
    fn journeys_are_valid_and_foremost() {
        let tn = path_network(vec![vec![1, 3], vec![2, 5], vec![4]], 5);
        let run = foremost(&tn, 0, 0);
        for v in 1..=3u32 {
            let j = run.journey_to(v).unwrap();
            assert_eq!(j.source(), 0);
            assert_eq!(j.target(), v);
            assert_eq!(j.arrival(), run.arrival(v).unwrap());
            assert!(j.is_realizable_in(&tn));
        }
        assert!(run.journey_to(0).is_none());
    }

    #[test]
    fn journey_to_unreachable_is_none() {
        let tn = path_network(vec![vec![2], vec![1]], 2);
        let run = foremost(&tn, 0, 0);
        assert!(run.journey_to(2).is_none());
    }

    #[test]
    fn horizon_truncates_the_sweep() {
        let tn = path_network(vec![vec![1], vec![2], vec![3]], 3);
        let run = foremost_with_horizon(&tn, 0, 0, 2);
        assert_eq!(run.arrival(2), Some(2));
        assert_eq!(run.arrival(3), None);
    }

    #[test]
    fn clique_single_labels_reach_everyone() {
        // In a clique with one label per edge, the direct edge always
        // provides a journey (the paper's observation that K_n is the only
        // graph where one label always suffices).
        let g = generators::clique(6, false);
        let m = g.num_edges();
        let labels: Vec<Time> = (0..m as Time).map(|i| 1 + (i % 6)).collect();
        let tn = TemporalNetwork::new(g, LabelAssignment::single(labels).unwrap(), 6).unwrap();
        for s in 0..6u32 {
            assert_eq!(foremost(&tn, s, 0).reached_count(), 6, "source {s}");
        }
    }

    #[test]
    fn arrival_at_source_is_start_time() {
        let tn = path_network(vec![vec![1]], 1);
        let run = foremost(&tn, 0, 0);
        assert_eq!(run.arrival(0), Some(0));
        assert_eq!(run.source(), 0);
        assert_eq!(run.start_time(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let tn = path_network(vec![vec![1]], 1);
        let _ = foremost(&tn, 9, 0);
    }
}
