//! Hop-bounded temporal reachability and fewest-hop journeys.
//!
//! The paper's expansion process certifies journeys of `Θ(log n)` *hops*;
//! this module measures hop counts exactly: `min_hops(tn, s, limit)[v]` is
//! the fewest edges of any `(s, v)`-journey, computed by `limit` rounds of
//! the hop-bounded foremost recurrence
//! `A_{h+1}[v] = min(A_h[v], min { l : (u,v,l), A_h[u] < l })`,
//! each round an `O(M + a)` label sweep.

use crate::network::TemporalNetwork;
use crate::NEVER;
use ephemeral_graph::NodeId;

/// Fewest hops of any journey from `source` to each vertex using at most
/// `max_hops` edges; `u32::MAX` where no such journey exists. The source
/// reports 0.
///
/// # Panics
/// If `source` is out of range.
#[must_use]
pub fn min_hops(tn: &TemporalNetwork, source: NodeId, max_hops: usize) -> Vec<u32> {
    let n = tn.num_nodes();
    assert!((source as usize) < n, "source {source} out of range");
    let directed = tn.graph().is_directed();
    let mut hops = vec![u32::MAX; n];
    hops[source as usize] = 0;
    let mut arr_prev = vec![NEVER; n];
    arr_prev[source as usize] = 0;
    let mut arr_next = arr_prev.clone();

    for round in 1..=max_hops as u32 {
        let mut changed = false;
        for t in 1..=tn.lifetime() {
            for &e in tn.edges_at(t) {
                let (u, v) = tn.graph().endpoints(e);
                if arr_prev[u as usize] < t && arr_next[v as usize] > t {
                    arr_next[v as usize] = t;
                    changed = true;
                }
                if !directed && arr_prev[v as usize] < t && arr_next[u as usize] > t {
                    arr_next[u as usize] = t;
                    changed = true;
                }
            }
        }
        for v in 0..n {
            if hops[v] == u32::MAX && arr_next[v] != NEVER {
                hops[v] = round;
            }
        }
        if !changed {
            break;
        }
        arr_prev.copy_from_slice(&arr_next);
    }
    hops
}

/// Maximum, over reachable vertices, of the fewest-hop count from `source`
/// (`None` when some vertex is unreachable within `max_hops`).
#[must_use]
pub fn hop_eccentricity(tn: &TemporalNetwork, source: NodeId, max_hops: usize) -> Option<u32> {
    let hops = min_hops(tn, source, max_hops);
    let mut max = 0;
    for &h in &hops {
        if h == u32::MAX {
            return None;
        }
        max = max.max(h);
    }
    Some(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foremost::foremost;
    use crate::{LabelAssignment, Time};
    use ephemeral_graph::generators;

    fn path_network(labels: Vec<Vec<Time>>, lifetime: Time) -> TemporalNetwork {
        let g = generators::path(labels.len() + 1);
        TemporalNetwork::new(g, LabelAssignment::from_vecs(labels).unwrap(), lifetime).unwrap()
    }

    #[test]
    fn hops_on_increasing_path() {
        let tn = path_network(vec![vec![1], vec![2], vec![3]], 3);
        assert_eq!(min_hops(&tn, 0, 10), vec![0, 1, 2, 3]);
        assert_eq!(hop_eccentricity(&tn, 0, 10), Some(3));
    }

    #[test]
    fn hop_limit_truncates() {
        let tn = path_network(vec![vec![1], vec![2], vec![3]], 3);
        let h = min_hops(&tn, 0, 2);
        assert_eq!(h[2], 2);
        assert_eq!(h[3], u32::MAX);
        assert_eq!(hop_eccentricity(&tn, 0, 2), None);
    }

    #[test]
    fn min_hops_can_exceed_static_distance() {
        // Triangle where the direct edge 0—2 is only available before the
        // two-hop route: direct needs label after nothing (fine), so make
        // direct edge label too early to matter for a later start… instead:
        // direct edge 0—2 has label 1 but we query hops; a journey of 1 hop
        // exists, so min_hops = 1. Then remove viability by giving the
        // direct edge a label that conflicts with nothing: use a graph where
        // the only journey to 3 goes around.
        let g = generators::cycle(4); // edges: 0-1, 1-2, 2-3, 3-0
        let labels = LabelAssignment::from_vecs(vec![vec![1], vec![2], vec![3], vec![10]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 10).unwrap();
        let h = min_hops(&tn, 0, 10);
        // 0—3 direct at label 10 works: 1 hop.
        assert_eq!(h[3], 1);
        // 0—2: direct edge doesn't exist; 0-1-2 via labels 1,2: 2 hops.
        assert_eq!(h[2], 2);
    }

    #[test]
    fn consistency_with_foremost_reachability() {
        let g = generators::cycle(6);
        let m = g.num_edges();
        let labels: Vec<Time> = (0..m as Time).map(|i| 1 + (i * 5) % 7).collect();
        let tn = TemporalNetwork::new(g, LabelAssignment::single(labels).unwrap(), 7).unwrap();
        for s in 0..6u32 {
            let run = foremost(&tn, s, 0);
            let hops = min_hops(&tn, s, 6);
            for v in 0..6u32 {
                assert_eq!(run.reached(v), hops[v as usize] != u32::MAX, "s={s} v={v}");
            }
        }
    }

    #[test]
    fn early_exit_when_stable() {
        // One edge: after round 1 nothing changes; larger limits are free.
        let tn = path_network(vec![vec![1]], 1);
        assert_eq!(min_hops(&tn, 0, 1_000_000), vec![0, 1]);
    }
}
