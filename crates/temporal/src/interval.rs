//! Interval availability — the "continuous" model the paper's related work
//! contrasts with (Bui-Xuan–Ferreira–Jarry; Fleischer–Tardos).
//!
//! Here an edge is available for whole inclusive windows `[start, end]`
//! rather than isolated moments. Journeys still need strictly increasing
//! crossing times, but within a window the traveller crosses at *any*
//! integer moment — so waiting at a vertex until a window opens is the only
//! delay. Because windows are not label-bucketable, the foremost algorithm
//! here is Dijkstra-style (`O(M log n)`) instead of the discrete sweep's
//! `O(M + a)`; the tests pin both against each other by exploding windows
//! into discrete labels.

use crate::assignment::LabelAssignment;
use crate::{Time, NEVER};
use ephemeral_graph::{Graph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An inclusive availability window `[start, end]`, `1 ≤ start ≤ end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Interval {
    /// First moment the edge is usable.
    pub start: Time,
    /// Last moment the edge is usable.
    pub end: Time,
}

impl Interval {
    /// Create a window (panics if `start == 0` or `start > end`).
    #[must_use]
    pub fn new(start: Time, end: Time) -> Self {
        assert!(start >= 1, "windows start at time 1");
        assert!(start <= end, "empty window [{start}, {end}]");
        Self { start, end }
    }

    /// Number of usable moments.
    #[must_use]
    pub const fn len(&self) -> Time {
        self.end - self.start + 1
    }

    /// Windows are never empty (enforced at construction); provided for
    /// API symmetry.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        false
    }
}

/// A temporal network with interval availability.
#[derive(Debug, Clone)]
pub struct IntervalNetwork {
    graph: Graph,
    /// CSR: windows of edge `e`, sorted by start.
    offsets: Vec<u32>,
    windows: Vec<Interval>,
    lifetime: Time,
}

impl IntervalNetwork {
    /// Build from one window list per edge. Windows are sorted per edge;
    /// returns `None` on an edge-count mismatch or a window beyond the
    /// lifetime.
    #[must_use]
    pub fn new(graph: Graph, mut per_edge: Vec<Vec<Interval>>, lifetime: Time) -> Option<Self> {
        if per_edge.len() != graph.num_edges() || lifetime == 0 {
            return None;
        }
        let mut offsets = Vec::with_capacity(per_edge.len() + 1);
        offsets.push(0u32);
        let mut windows = Vec::new();
        for list in &mut per_edge {
            if list.iter().any(|w| w.end > lifetime) {
                return None;
            }
            list.sort_unstable();
            windows.extend_from_slice(list);
            offsets.push(windows.len() as u32);
        }
        Some(Self {
            graph,
            offsets,
            windows,
            lifetime,
        })
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Lifetime `a`.
    #[must_use]
    pub const fn lifetime(&self) -> Time {
        self.lifetime
    }

    /// Windows of edge `e`, sorted by start.
    #[must_use]
    pub fn windows(&self, e: u32) -> &[Interval] {
        &self.windows[self.offsets[e as usize] as usize..self.offsets[e as usize + 1] as usize]
    }

    /// Earliest usable crossing moment of edge `e` strictly after `after`,
    /// or `None`.
    #[must_use]
    pub fn earliest_crossing(&self, e: u32, after: Time) -> Option<Time> {
        for w in self.windows(e) {
            if w.end > after {
                return Some(w.start.max(after + 1));
            }
        }
        None
    }

    /// Explode every window into discrete labels — the equivalence bridge
    /// to [`crate::TemporalNetwork`] (quadratic in window length; meant for
    /// tests and small lifetimes).
    #[must_use]
    pub fn to_discrete(&self) -> LabelAssignment {
        LabelAssignment::from_fn(self.graph.num_edges(), |e| {
            self.windows(e)
                .iter()
                .flat_map(|w| w.start..=w.end)
                .collect()
        })
        .expect("window moments are valid labels")
    }
}

/// Earliest arrivals from `source` (departing after `start_time`) under
/// interval semantics, by Dijkstra over crossing times.
///
/// # Panics
/// If `source` is out of range.
#[must_use]
pub fn foremost_intervals(net: &IntervalNetwork, source: NodeId, start_time: Time) -> Vec<Time> {
    let n = net.graph.num_nodes();
    assert!((source as usize) < n, "source {source} out of range");
    let directed = net.graph.is_directed();
    let mut arrival = vec![NEVER; n];
    arrival[source as usize] = start_time;
    let mut heap: BinaryHeap<Reverse<(Time, NodeId)>> = BinaryHeap::new();
    heap.push(Reverse((start_time, source)));
    while let Some(Reverse((t, u))) = heap.pop() {
        if t > arrival[u as usize] {
            continue; // stale entry
        }
        let (nbrs, eids) = net.graph.out_adjacency(u);
        for (&v, &e) in nbrs.iter().zip(eids) {
            // For undirected graphs out_adjacency already covers both
            // directions; for directed graphs arcs point the right way.
            let _ = directed;
            if let Some(cross) = net.earliest_crossing(e, t) {
                if cross < arrival[v as usize] {
                    arrival[v as usize] = cross;
                    heap.push(Reverse((cross, v)));
                }
            }
        }
    }
    arrival
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foremost::foremost;
    use crate::TemporalNetwork;
    use ephemeral_graph::generators;
    use ephemeral_rng::{RandomSource, SeedSequence};

    fn iv(a: Time, b: Time) -> Interval {
        Interval::new(a, b)
    }

    #[test]
    fn interval_basics() {
        let w = iv(3, 7);
        assert_eq!(w.len(), 5);
        assert!(!w.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn inverted_window_panics() {
        let _ = iv(5, 4);
    }

    #[test]
    fn earliest_crossing_respects_windows_and_waiting() {
        let g = generators::path(2);
        let net = IntervalNetwork::new(g, vec![vec![iv(3, 5), iv(9, 9)]], 10).unwrap();
        assert_eq!(net.earliest_crossing(0, 0), Some(3)); // wait for opening
        assert_eq!(net.earliest_crossing(0, 3), Some(4)); // inside the window
        assert_eq!(net.earliest_crossing(0, 5), Some(9)); // next window
        assert_eq!(net.earliest_crossing(0, 9), None); // nothing later
    }

    #[test]
    fn foremost_through_consecutive_windows() {
        // 0—1 open [2,4], 1—2 open [3,8]: arrive 1 at 2, cross to 2 at 3.
        let g = generators::path(3);
        let net = IntervalNetwork::new(g, vec![vec![iv(2, 4)], vec![iv(3, 8)]], 8).unwrap();
        let arr = foremost_intervals(&net, 0, 0);
        assert_eq!(arr, vec![0, 2, 3]);
    }

    #[test]
    fn a_single_long_window_is_not_enough_twice() {
        // Both edges share the window [5,5]: strictly increasing crossing
        // times cannot fit two hops into one moment.
        let g = generators::path(3);
        let net = IntervalNetwork::new(g, vec![vec![iv(5, 5)], vec![iv(5, 5)]], 5).unwrap();
        let arr = foremost_intervals(&net, 0, 0);
        assert_eq!(arr[1], 5);
        assert_eq!(arr[2], NEVER);
        // Widen the second window by one moment and the journey completes.
        let g = generators::path(3);
        let net = IntervalNetwork::new(g, vec![vec![iv(5, 5)], vec![iv(5, 6)]], 6).unwrap();
        assert_eq!(foremost_intervals(&net, 0, 0)[2], 6);
    }

    #[test]
    fn rejects_bad_construction() {
        let g = generators::path(3);
        assert!(IntervalNetwork::new(g.clone(), vec![vec![]], 5).is_none()); // wrong edge count
        assert!(IntervalNetwork::new(g.clone(), vec![vec![iv(1, 9)], vec![]], 5).is_none()); // beyond lifetime
        assert!(IntervalNetwork::new(g, vec![vec![], vec![]], 0).is_none()); // zero lifetime
    }

    #[test]
    fn matches_discrete_explosion_on_random_instances() {
        let seq = SeedSequence::new(313);
        for trial in 0..40u64 {
            let mut rng = seq.rng(trial);
            let n = 3 + rng.index(8);
            let g = generators::gnp(n, 0.5, trial % 2 == 0, &mut rng);
            let lifetime: Time = 12;
            let per_edge: Vec<Vec<Interval>> = (0..g.num_edges())
                .map(|_| {
                    (0..1 + rng.index(2))
                        .map(|_| {
                            let s = rng.range_u32(1, lifetime);
                            let e = rng.range_u32(s, lifetime);
                            iv(s, e)
                        })
                        .collect()
                })
                .collect();
            let net = IntervalNetwork::new(g.clone(), per_edge, lifetime).unwrap();
            let discrete = TemporalNetwork::new(g, net.to_discrete(), lifetime).unwrap();
            for s in 0..n as u32 {
                assert_eq!(
                    foremost_intervals(&net, s, 0),
                    foremost(&discrete, s, 0).arrivals().to_vec(),
                    "trial {trial}, source {s}"
                );
            }
        }
    }

    #[test]
    fn directed_interval_networks_respect_orientation() {
        let mut b = ephemeral_graph::GraphBuilder::new_directed(2);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let net = IntervalNetwork::new(g, vec![vec![iv(1, 3)]], 3).unwrap();
        assert_eq!(foremost_intervals(&net, 0, 0)[1], 1);
        assert_eq!(foremost_intervals(&net, 1, 0)[0], NEVER);
    }
}
