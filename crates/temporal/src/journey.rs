//! Journeys (temporal paths) and their validation.

use crate::network::TemporalNetwork;
use crate::Time;
use ephemeral_graph::NodeId;
use std::fmt;

/// A time-edge `(u, v, l)`: the edge `{u, v}` (or arc `(u, v)`) crossed at
/// its availability time `l` (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeEdge {
    /// Tail (the vertex the step leaves).
    pub from: NodeId,
    /// Head (the vertex the step enters).
    pub to: NodeId,
    /// The label used.
    pub time: Time,
}

impl fmt::Display for TimeEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}→{} @{})", self.from, self.to, self.time)
    }
}

/// Why a sequence of time-edges is not a journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JourneyError {
    /// Journeys must contain at least one time-edge.
    Empty,
    /// Consecutive steps do not chain: step `i` ends where step `i+1` does
    /// not begin.
    Disconnected {
        /// Index of the first of the two offending steps.
        step: usize,
    },
    /// Labels are not strictly increasing at this step boundary.
    NonIncreasing {
        /// Index of the first of the two offending steps.
        step: usize,
    },
}

impl fmt::Display for JourneyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "journey must have at least one time-edge"),
            Self::Disconnected { step } => write!(f, "steps {step} and {} do not chain", step + 1),
            Self::NonIncreasing { step } => {
                write!(
                    f,
                    "labels not strictly increasing between steps {step} and {}",
                    step + 1
                )
            }
        }
    }
}

impl std::error::Error for JourneyError {}

/// A temporal path (Definition 2): a chained sequence of time-edges with
/// strictly increasing labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journey {
    edges: Vec<TimeEdge>,
}

impl Journey {
    /// Validate and wrap a sequence of time-edges.
    ///
    /// # Errors
    /// [`JourneyError`] when the sequence is empty, does not chain, or the
    /// labels fail to strictly increase.
    pub fn new(edges: Vec<TimeEdge>) -> Result<Self, JourneyError> {
        if edges.is_empty() {
            return Err(JourneyError::Empty);
        }
        for (i, pair) in edges.windows(2).enumerate() {
            if pair[0].to != pair[1].from {
                return Err(JourneyError::Disconnected { step: i });
            }
            if pair[0].time >= pair[1].time {
                return Err(JourneyError::NonIncreasing { step: i });
            }
        }
        Ok(Self { edges })
    }

    /// The time-edges, in travel order.
    #[must_use]
    pub fn edges(&self) -> &[TimeEdge] {
        &self.edges
    }

    /// First vertex.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.edges[0].from
    }

    /// Last vertex.
    #[must_use]
    pub fn target(&self) -> NodeId {
        self.edges[self.edges.len() - 1].to
    }

    /// Label of the first edge (departure time).
    #[must_use]
    pub fn departure(&self) -> Time {
        self.edges[0].time
    }

    /// Label of the last edge — the paper's *arrival time*.
    #[must_use]
    pub fn arrival(&self) -> Time {
        self.edges[self.edges.len() - 1].time
    }

    /// `arrival − departure + 1`: the number of time steps the journey
    /// spans, inclusive (1 for a single hop).
    #[must_use]
    pub fn duration(&self) -> Time {
        self.arrival() - self.departure() + 1
    }

    /// Number of edges traversed.
    #[must_use]
    pub fn hops(&self) -> usize {
        self.edges.len()
    }

    /// The vertex sequence `source, …, target` (`hops() + 1` vertices).
    #[must_use]
    pub fn vertices(&self) -> Vec<NodeId> {
        let mut vs = Vec::with_capacity(self.edges.len() + 1);
        vs.push(self.source());
        vs.extend(self.edges.iter().map(|e| e.to));
        vs
    }

    /// Is every step of this journey actually available in `tn`? Checks
    /// that the (arc-respecting, for directed networks) edge exists and
    /// carries the claimed label.
    #[must_use]
    pub fn is_realizable_in(&self, tn: &TemporalNetwork) -> bool {
        self.edges.iter().all(|te| {
            let g = tn.graph();
            let edge = if g.is_directed() {
                g.find_edge(te.from, te.to)
            } else {
                g.find_edge(te.from, te.to)
                    .or_else(|| g.find_edge(te.to, te.from))
            };
            edge.is_some_and(|e| tn.labels(e).binary_search(&te.time).is_ok())
        })
    }
}

impl fmt::Display for Journey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source())?;
        for e in &self.edges {
            write!(f, " -[{}]-> {}", e.time, e.to)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelAssignment;
    use crate::TemporalNetwork;
    use ephemeral_graph::generators;

    fn te(from: NodeId, to: NodeId, time: Time) -> TimeEdge {
        TimeEdge { from, to, time }
    }

    #[test]
    fn valid_journey_accessors() {
        let j = Journey::new(vec![te(0, 1, 2), te(1, 3, 5), te(3, 2, 6)]).unwrap();
        assert_eq!(j.source(), 0);
        assert_eq!(j.target(), 2);
        assert_eq!(j.departure(), 2);
        assert_eq!(j.arrival(), 6);
        assert_eq!(j.duration(), 5);
        assert_eq!(j.hops(), 3);
        assert_eq!(j.vertices(), vec![0, 1, 3, 2]);
    }

    #[test]
    fn empty_is_rejected() {
        assert_eq!(Journey::new(vec![]).unwrap_err(), JourneyError::Empty);
    }

    #[test]
    fn disconnected_is_rejected() {
        let err = Journey::new(vec![te(0, 1, 1), te(2, 3, 2)]).unwrap_err();
        assert_eq!(err, JourneyError::Disconnected { step: 0 });
    }

    #[test]
    fn equal_labels_are_rejected() {
        let err = Journey::new(vec![te(0, 1, 3), te(1, 2, 3)]).unwrap_err();
        assert_eq!(err, JourneyError::NonIncreasing { step: 0 });
    }

    #[test]
    fn decreasing_labels_are_rejected() {
        let err = Journey::new(vec![te(0, 1, 3), te(1, 2, 2)]).unwrap_err();
        assert_eq!(err, JourneyError::NonIncreasing { step: 0 });
    }

    #[test]
    fn realizability_checks_labels_and_orientation() {
        // Path 0—1—2, labels {2} and {4}.
        let g = generators::path(3);
        let labels = LabelAssignment::from_vecs(vec![vec![2], vec![4]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 5).unwrap();

        let ok = Journey::new(vec![te(0, 1, 2), te(1, 2, 4)]).unwrap();
        assert!(ok.is_realizable_in(&tn));
        // Undirected: reverse direction uses the same labels.
        let back = Journey::new(vec![te(2, 1, 4)]).unwrap();
        assert!(back.is_realizable_in(&tn));
        // Wrong label.
        let bad = Journey::new(vec![te(0, 1, 3)]).unwrap();
        assert!(!bad.is_realizable_in(&tn));
        // Nonexistent edge.
        let missing = Journey::new(vec![te(0, 2, 2)]).unwrap();
        assert!(!missing.is_realizable_in(&tn));
    }

    #[test]
    fn directed_realizability_respects_orientation() {
        let mut b = ephemeral_graph::GraphBuilder::new_directed(2);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let labels = LabelAssignment::single(vec![3]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 3).unwrap();
        assert!(Journey::new(vec![te(0, 1, 3)])
            .unwrap()
            .is_realizable_in(&tn));
        assert!(!Journey::new(vec![te(1, 0, 3)])
            .unwrap()
            .is_realizable_in(&tn));
    }

    #[test]
    fn display_renders_arrows() {
        let j = Journey::new(vec![te(0, 1, 2), te(1, 2, 7)]).unwrap();
        assert_eq!(format!("{j}"), "0 -[2]-> 1 -[7]-> 2");
        assert_eq!(format!("{}", te(0, 1, 2)), "(0→1 @2)");
    }

    #[test]
    fn error_display() {
        assert!(JourneyError::Empty.to_string().contains("at least one"));
        assert!(JourneyError::Disconnected { step: 0 }
            .to_string()
            .contains("chain"));
        assert!(JourneyError::NonIncreasing { step: 1 }
            .to_string()
            .contains("strictly increasing"));
    }
}
