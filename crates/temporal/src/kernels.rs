//! The single explicit word-kernel layer under all three sweep engines.
//!
//! Every inner loop the engines run — the wide engine's `u64` OR/ANDN
//! row walks ([`ornot_accumulate`] / [`commit_fresh`]), the sparse
//! engine's sorted-`u32` reacher-list merges ([`merge_dual_emitting`] /
//! [`merge_into_emitting`]), the delta engine's retract/replay word ops
//! ([`ornot_word`] / [`nonzero_word_mask`]) and the streaming closure's
//! block fills ([`for_each_set_lane`] / [`set_lane_bits`]) — lives here
//! as one grep-able definition with an explicit semantics contract, so a
//! future GPU/ISPC backend replaces this module, not four engines.
//!
//! The word kernels are written as [`UNROLL_WORDS`]-word unrolled chunks
//! (fixed-size array refs, so bounds checks vanish and the chunk body is
//! straight-line autovectorization bait on any target; the unroll width
//! itself is `cfg(target_arch)`-gated to 8 words = one 64-byte line where
//! 256/512-bit vectors exist, 4 elsewhere) over 64-byte-aligned slabs:
//! [`AlignedSlab`] backs the wide engine's `before`/`delta` rows, the
//! delta cursor's row matrix and the streaming-closure block cache, and
//! [`AlignedLanes`] backs the sparse engine's append-only region arena.
//! Both are plain safe Rust (this crate forbids `unsafe`): they
//! over-allocate an ordinary `Vec` and re-derive the aligned interior
//! offset after any reallocation, so alignment is an invariant, not an
//! assumption.
//!
//! Block schedules round interior block edges to [`CHUNK_WORDS`]
//! multiples (`wide::word_blocks` / `wide::block_schedule`), so chunk
//! interiors of every parallel shard are whole aligned chunks and only
//! the final tail of the final block is ragged.
//!
//! Every kernel is pinned bit-identical to the naive per-word reference
//! in [`scalar`] by differential proptests
//! (`crates/temporal/tests/kernel_proptests.rs`: ragged lengths 0..257,
//! every slab misalignment offset, random bit patterns) and at runtime by
//! the `kernel_bench -- --test` CI smoke.

use crate::Time;
use ephemeral_graph::NodeId;

/// Words per aligned kernel chunk: the granularity interior block edges
/// are rounded to. **Fixed at 8 on every target** (8 × 8 B = one 64-byte
/// cache line) so block schedules — and therefore per-shard stats — are
/// platform-independent; only the loop-shape [`UNROLL_WORDS`] varies by
/// architecture.
pub const CHUNK_WORDS: usize = 8;

/// Byte alignment of [`AlignedSlab`] / [`AlignedLanes`] interiors: one
/// cache line, enough for any 512-bit vector the autovectorizer picks.
pub const SLAB_ALIGN_BYTES: usize = 64;

/// Unrolled words per iteration of the straight-line kernel bodies.
/// 8 (a full [`CHUNK_WORDS`] chunk) where wide vectors are the norm,
/// 4 elsewhere — always a divisor of [`CHUNK_WORDS`], so chunk-aligned
/// slabs stay unroll-aligned.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
pub const UNROLL_WORDS: usize = 8;
/// Unrolled words per iteration of the straight-line kernel bodies.
/// 8 (a full [`CHUNK_WORDS`] chunk) where wide vectors are the norm,
/// 4 elsewhere — always a divisor of [`CHUNK_WORDS`], so chunk-aligned
/// slabs stay unroll-aligned.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub const UNROLL_WORDS: usize = 4;

/// `dst.len()` ratio over `src.len()` above which
/// [`merge_into_emitting`] gallops (binary-searches each source lane and
/// block-copies the runs between) instead of stepping both lists word by
/// word — the regime of a long-lived frontier absorbing a small one.
pub const GALLOP_FACTOR: usize = 8;

const U64_BYTES: usize = std::mem::size_of::<u64>();
const U32_BYTES: usize = std::mem::size_of::<u32>();
/// Alignment slack in `u64` words an [`AlignedSlab`] over-allocates.
const ALIGN_U64S: usize = SLAB_ALIGN_BYTES / U64_BYTES;
/// Alignment slack in `u32` lanes an [`AlignedLanes`] over-allocates.
const ALIGN_U32S: usize = SLAB_ALIGN_BYTES / U32_BYTES;

/// Aligned offset (in `T`-sized units of `unit` bytes) of the first
/// 64-byte boundary at or after `addr`.
#[inline]
fn align_offset(addr: usize, unit: usize) -> usize {
    debug_assert_eq!(addr % unit, 0, "allocation must be unit-aligned");
    (SLAB_ALIGN_BYTES - addr % SLAB_ALIGN_BYTES) % SLAB_ALIGN_BYTES / unit
}

// ---------------------------------------------------------------------------
// Aligned slabs
// ---------------------------------------------------------------------------

/// A 64-byte-aligned `u64` slab: the backing store for frontier rows
/// (wide `before`/`delta`, delta-cursor rows, closure block cache).
///
/// Safe-Rust alignment: the slab over-allocates an ordinary `Vec<u64>`
/// and exposes the interior slice starting at the first 64-byte boundary.
/// [`AlignedSlab::resize_zeroed`] re-derives that offset after any
/// reallocation, so [`AlignedSlab::words`] is always 64-byte aligned.
/// Warm resizes within capacity never allocate (pinned by
/// `crates/core/tests/alloc_regression.rs`).
#[derive(Clone, Debug, Default)]
pub struct AlignedSlab {
    buf: Vec<u64>,
    offset: usize,
    len: usize,
}

impl AlignedSlab {
    /// An empty slab; allocates nothing until the first resize.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buf: Vec::new(),
            offset: 0,
            len: 0,
        }
    }

    /// Logical length in words.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds zero words.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize to exactly `len` zeroed words at a 64-byte-aligned base,
    /// dropping previous contents. Allocates only when `len` outgrows the
    /// current capacity; warm calls just re-zero.
    pub fn resize_zeroed(&mut self, len: usize) {
        self.buf.clear();
        self.buf.reserve(len + ALIGN_U64S);
        self.offset = align_offset(self.buf.as_ptr() as usize, U64_BYTES);
        self.buf.resize(self.offset + len, 0);
        self.len = len;
    }

    /// The logical words, base 64-byte aligned.
    #[inline]
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.buf[self.offset..self.offset + self.len]
    }

    /// The logical words, mutable, base 64-byte aligned.
    #[inline]
    #[must_use]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.buf[self.offset..self.offset + self.len]
    }
}

/// A 64-byte-aligned append-only `u32` buffer: the backing store for the
/// sparse engine's reacher-list arena (and its compaction scratch).
///
/// Derefs to the live lane slice, so region indexing
/// (`&arena[start..start + len]`) works unchanged; every growth path
/// ([`AlignedLanes::reserve`] / [`AlignedLanes::push`] /
/// [`AlignedLanes::extend_from_slice`]) re-derives the aligned interior
/// offset if the underlying allocation moved, shifting the live lanes in
/// place — so the arena base stays 64-byte aligned across reallocation,
/// compaction swaps, and `clear`.
#[derive(Clone, Debug, Default)]
pub struct AlignedLanes {
    buf: Vec<u32>,
    /// Live lanes are `buf[offset..]`; `buf[..offset]` is alignment pad.
    offset: usize,
}

impl AlignedLanes {
    /// An empty arena; allocates nothing until the first push.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buf: Vec::new(),
            offset: 0,
        }
    }

    /// Drop all lanes, keeping capacity, and re-establish alignment.
    pub fn clear(&mut self) {
        self.buf.clear();
        if self.buf.capacity() == 0 {
            // An unallocated Vec's pointer is dangling; materialise a
            // real allocation before deriving the offset from it.
            self.buf.reserve(ALIGN_U32S);
        }
        self.offset = align_offset(self.buf.as_ptr() as usize, U32_BYTES);
        self.buf.resize(self.offset, 0);
    }

    /// Ensure room for `additional` more lanes without reallocation,
    /// re-aligning the live lanes if the buffer moved.
    pub fn reserve(&mut self, additional: usize) {
        let needed = self.buf.len() + additional + ALIGN_U32S;
        if needed <= self.buf.capacity() {
            return;
        }
        self.buf.reserve(needed - self.buf.len());
        let new_off = align_offset(self.buf.as_ptr() as usize, U32_BYTES);
        let old_off = self.offset;
        if new_off == old_off {
            return;
        }
        let live = self.buf.len() - old_off;
        if new_off > old_off {
            // Grow the pad first; the extension stays within the fresh
            // capacity, so the buffer cannot move again.
            self.buf.resize(new_off + live, 0);
            self.buf.copy_within(old_off..old_off + live, new_off);
        } else {
            self.buf.copy_within(old_off..old_off + live, new_off);
            self.buf.truncate(new_off + live);
        }
        self.offset = new_off;
    }

    /// Append one lane.
    #[inline]
    pub fn push(&mut self, lane: u32) {
        if self.buf.len() + 1 + ALIGN_U32S > self.buf.capacity() {
            self.reserve(1);
        }
        self.buf.push(lane);
    }

    /// Append a lane slice (the arena's region copy: relabel re-points
    /// and compaction evacuations both land here).
    #[inline]
    pub fn extend_from_slice(&mut self, lanes: &[u32]) {
        if self.buf.len() + lanes.len() + ALIGN_U32S > self.buf.capacity() {
            self.reserve(lanes.len());
        }
        self.buf.extend_from_slice(lanes);
    }
}

impl std::ops::Deref for AlignedLanes {
    type Target = [u32];

    #[inline]
    fn deref(&self) -> &[u32] {
        &self.buf[self.offset.min(self.buf.len())..]
    }
}

// ---------------------------------------------------------------------------
// u64 word kernels
// ---------------------------------------------------------------------------

/// OR/ANDN over one word: `a & !b` — the bits of `a` not already in `b`.
/// The single definition behind every "fresh = reached-from minus
/// already-reached" word op (batched engine exchanges, delta retract
/// masks and replay accumulation all route here).
#[inline(always)]
#[must_use]
pub const fn ornot_word(a: u64, b: u64) -> u64 {
    a & !b
}

/// Accumulating OR/ANDN over equal-length rows:
/// `dst[w] |= a[w] & !b[w]` for every word, returning the OR-fold of all
/// newly ORed-in bits (`0` ⇔ the row contributed nothing). Exact
/// semantics of the wide engine's `apply` inner loop. Panics if the
/// slice lengths differ.
#[must_use]
pub fn ornot_accumulate(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
    let n = dst.len();
    assert!(
        a.len() == n && b.len() == n,
        "ornot_accumulate: slice lengths must match"
    );
    let mut any = 0u64;
    let mut dc = dst.chunks_exact_mut(UNROLL_WORDS);
    let mut ac = a.chunks_exact(UNROLL_WORDS);
    let mut bc = b.chunks_exact(UNROLL_WORDS);
    for ((d, a), b) in (&mut dc).zip(&mut ac).zip(&mut bc) {
        let d: &mut [u64; UNROLL_WORDS] = d.try_into().unwrap();
        let a: &[u64; UNROLL_WORDS] = a.try_into().unwrap();
        let b: &[u64; UNROLL_WORDS] = b.try_into().unwrap();
        for k in 0..UNROLL_WORDS {
            let f = a[k] & !b[k];
            d[k] |= f;
            any |= f;
        }
    }
    for ((d, &a), &b) in dc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        let f = a & !b;
        *d |= f;
        any |= f;
    }
    any
}

/// Bucket-commit over equal-length rows: for every word,
/// `fresh = delta[w] & !before[w]`, then `before[w] |= fresh` and
/// `delta[w] = 0`; calls `on_fresh(w, fresh)` **in ascending word order**
/// for each word with `fresh != 0` and returns the total fresh popcount.
/// Exact semantics of the wide engine's per-vertex commit loop — `delta`
/// is always fully zeroed, even where nothing was fresh. Panics if the
/// slice lengths differ.
pub fn commit_fresh(
    delta: &mut [u64],
    before: &mut [u64],
    mut on_fresh: impl FnMut(usize, u64),
) -> u32 {
    assert_eq!(
        delta.len(),
        before.len(),
        "commit_fresh: slice lengths must match"
    );
    let mut total = 0u32;
    let mut w = 0usize;
    let mut dc = delta.chunks_exact_mut(UNROLL_WORDS);
    let mut bc = before.chunks_exact_mut(UNROLL_WORDS);
    for (d, b) in (&mut dc).zip(&mut bc) {
        let d: &mut [u64; UNROLL_WORDS] = d.try_into().unwrap();
        let b: &mut [u64; UNROLL_WORDS] = b.try_into().unwrap();
        let mut fr = [0u64; UNROLL_WORDS];
        let mut any = 0u64;
        for k in 0..UNROLL_WORDS {
            fr[k] = d[k] & !b[k];
            b[k] |= fr[k];
            d[k] = 0;
            any |= fr[k];
        }
        if any != 0 {
            for (k, &f) in fr.iter().enumerate() {
                if f != 0 {
                    total += f.count_ones();
                    on_fresh(w + k, f);
                }
            }
        }
        w += UNROLL_WORDS;
    }
    for (d, b) in dc.into_remainder().iter_mut().zip(bc.into_remainder()) {
        let fresh = *d & !*b;
        *b |= fresh;
        *d = 0;
        if fresh != 0 {
            total += fresh.count_ones();
            on_fresh(w, fresh);
        }
        w += 1;
    }
    total
}

/// Total set-bit count over a word row (closure `out_count`, missing-pair
/// folds).
#[must_use]
pub fn popcount_words(words: &[u64]) -> usize {
    let mut chunks = words.chunks_exact(UNROLL_WORDS);
    let mut total = 0usize;
    for c in &mut chunks {
        let c: &[u64; UNROLL_WORDS] = c.try_into().unwrap();
        total += c.iter().map(|w| w.count_ones() as usize).sum::<usize>();
    }
    total
        + chunks
            .remainder()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>()
}

/// Per-word occupancy mask: ORs bit `w` of `out` (layout
/// `out[w / 64] |= 1 << (w % 64)`) for every `w` with `words[w] != 0`.
/// The delta cursor's row-occupancy build. Never clears bits; panics if
/// `out` is shorter than `words.len().div_ceil(64)`.
pub fn nonzero_word_mask(words: &[u64], out: &mut [u64]) {
    assert!(
        out.len() >= words.len().div_ceil(64),
        "nonzero_word_mask: out too short"
    );
    for (w, &word) in words.iter().enumerate() {
        out[w / 64] |= u64::from(word != 0) << (w % 64);
    }
}

/// Set bit `lane` of `row` (layout `row[lane / 64] |= 1 << (lane % 64)`)
/// for every lane in the sorted-or-not slice — the sparse engine's
/// list-to-bitrow materialisation. Panics if any lane is out of range.
#[inline]
pub fn set_lane_bits(row: &mut [u64], lanes: &[u32]) {
    for &lane in lanes {
        row[lane as usize / 64] |= 1u64 << (lane % 64);
    }
}

/// Clear bit `lane` of `row` for every lane in the slice: the exact
/// inverse of [`set_lane_bits`], used to restore a pooled row buffer to
/// all-zero without an `O(W)` wipe.
#[inline]
pub fn clear_lane_bits(row: &mut [u64], lanes: &[u32]) {
    for &lane in lanes {
        row[lane as usize / 64] &= !(1u64 << (lane % 64));
    }
}

/// Call `f(lane)` for every set bit of the word row, in ascending lane
/// order (`lane = w * 64 + bit`): the closure transpose / lane-walk loop.
#[inline]
pub fn for_each_set_lane(words: &[u64], mut f: impl FnMut(usize)) {
    for (w, &word) in words.iter().enumerate() {
        let mut lanes = word;
        while lanes != 0 {
            f(w * 64 + lanes.trailing_zeros() as usize);
            lanes &= lanes - 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Sorted-u32 merge kernels (the sparse arena's inner loops)
// ---------------------------------------------------------------------------

/// A word-grouped callback accumulator: collects consecutive fresh lanes
/// of one 64-lane word into a mask and flushes one `on_reach` per word —
/// the wide engine's callback granularity, produced inline during a
/// merge. Lanes **must** be pushed in ascending order.
pub struct MaskEmitter {
    word: usize,
    mask: u64,
    fresh: u32,
}

impl Default for MaskEmitter {
    fn default() -> Self {
        Self::new()
    }
}

impl MaskEmitter {
    /// An emitter with nothing buffered.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            word: usize::MAX,
            mask: 0,
            fresh: 0,
        }
    }

    /// Buffer fresh `lane`; flushes the previous word's mask through
    /// `on_reach(v, word, mask, t)` when the lane crosses a word boundary.
    #[inline]
    pub fn push(
        &mut self,
        lane: u32,
        v: NodeId,
        t: Time,
        on_reach: &mut impl FnMut(NodeId, usize, u64, Time),
    ) {
        let w = (lane / 64) as usize;
        if w != self.word {
            if self.mask != 0 {
                on_reach(v, self.word, self.mask, t);
            }
            self.word = w;
            self.mask = 0;
        }
        self.mask |= 1u64 << (lane % 64);
        self.fresh += 1;
    }

    /// Flush the final buffered word and return the total fresh count.
    #[inline]
    pub fn finish(
        self,
        v: NodeId,
        t: Time,
        on_reach: &mut impl FnMut(NodeId, usize, u64, Time),
    ) -> u32 {
        if self.mask != 0 {
            on_reach(v, self.word, self.mask, t);
        }
        self.fresh
    }
}

/// Fire `on_reach` for a sorted slice of fresh lanes, grouped per word.
#[inline]
pub fn emit(news: &[u32], v: NodeId, t: Time, on_reach: &mut impl FnMut(NodeId, usize, u64, Time)) {
    let mut em = MaskEmitter::new();
    for &lane in news {
        em.push(lane, v, t, on_reach);
    }
    let _ = em.finish(v, t, on_reach);
}

/// Union-merge the sorted duplicate-free lane lists of `u` and `v` into
/// `out` (cleared first), emitting each side's exclusives as the other
/// side's fresh arrivals inline (word-grouped, ascending). Returns
/// `(fresh_u, fresh_v)` — the counts of `b`-exclusives and
/// `a`-exclusives respectively. Branch-light: both cursors advance by
/// comparison masks, the union element is pushed unconditionally.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn merge_dual_emitting(
    a: &[u32],
    b: &[u32],
    out: &mut Vec<u32>,
    u: NodeId,
    v: NodeId,
    t: Time,
    on_reach: &mut impl FnMut(NodeId, usize, u64, Time),
) -> (u32, u32) {
    out.clear();
    out.reserve(a.len() + b.len());
    let mut em_u = MaskEmitter::new(); // b-exclusives reach u
    let mut em_v = MaskEmitter::new(); // a-exclusives reach v
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        out.push(x.min(y));
        if x < y {
            em_v.push(x, v, t, on_reach);
        }
        if y < x {
            em_u.push(y, u, t, on_reach);
        }
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    out.extend_from_slice(&a[i..]);
    for &x in &a[i..] {
        em_v.push(x, v, t, on_reach);
    }
    out.extend_from_slice(&b[j..]);
    for &y in &b[j..] {
        em_u.push(y, u, t, on_reach);
    }
    (em_u.finish(u, t, on_reach), em_v.finish(v, t, on_reach))
}

/// Union-merge the frozen source list `src` into the live list `d` of
/// `dst`, writing the union into `out` (cleared first) and emitting the
/// `src`-exclusives as fresh arrivals of `dst` (word-grouped,
/// ascending). Returns the fresh count.
///
/// Two regimes behind one contract: when
/// `d.len() ≥ GALLOP_FACTOR · max(src.len(), 1)` the kernel **gallops**
/// — binary-searching each source lane's insertion point and
/// block-copying the `d`-run before it — otherwise it runs the
/// branch-light word-by-word merge. Output and emissions are identical
/// either way (pinned by the kernel proptests across skew ratios).
#[inline]
pub fn merge_into_emitting(
    d: &[u32],
    src: &[u32],
    out: &mut Vec<u32>,
    dst: NodeId,
    t: Time,
    on_reach: &mut impl FnMut(NodeId, usize, u64, Time),
) -> u32 {
    out.clear();
    out.reserve(d.len() + src.len());
    let mut em = MaskEmitter::new();
    if d.len() >= GALLOP_FACTOR * src.len().max(1) {
        let mut i = 0usize;
        for &y in src {
            let run = d[i..].partition_point(|&x| x < y);
            out.extend_from_slice(&d[i..i + run]);
            i += run;
            out.push(y);
            if i < d.len() && d[i] == y {
                i += 1;
            } else {
                em.push(y, dst, t, on_reach);
            }
        }
        out.extend_from_slice(&d[i..]);
        return em.finish(dst, t, on_reach);
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < d.len() && j < src.len() {
        let x = d[i];
        let y = src[j];
        out.push(x.min(y));
        if y < x {
            em.push(y, dst, t, on_reach);
        }
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    out.extend_from_slice(&d[i..]);
    out.extend_from_slice(&src[j..]);
    for &y in &src[j..] {
        em.push(y, dst, t, on_reach);
    }
    em.finish(dst, t, on_reach)
}

// ---------------------------------------------------------------------------
// Scalar reference kernels (the differential oracle)
// ---------------------------------------------------------------------------

/// Naive one-word-at-a-time reference implementations of every kernel:
/// the differential oracle the unrolled kernels are pinned against (by
/// `kernel_proptests` and the `kernel_bench -- --test` runtime smoke) and
/// the honest "before" baseline of the kernel micro-benchmarks.
pub mod scalar {
    /// Reference for [`super::ornot_accumulate`].
    #[must_use]
    pub fn ornot_accumulate(dst: &mut [u64], a: &[u64], b: &[u64]) -> u64 {
        assert!(a.len() == dst.len() && b.len() == dst.len());
        let mut any = 0u64;
        for ((d, &a), &b) in dst.iter_mut().zip(a).zip(b) {
            let f = a & !b;
            *d |= f;
            any |= f;
        }
        any
    }

    /// Reference for [`super::commit_fresh`].
    pub fn commit_fresh(
        delta: &mut [u64],
        before: &mut [u64],
        mut on_fresh: impl FnMut(usize, u64),
    ) -> u32 {
        assert_eq!(delta.len(), before.len());
        let mut total = 0u32;
        for (w, (d, b)) in delta.iter_mut().zip(before.iter_mut()).enumerate() {
            let fresh = *d & !*b;
            *d = 0;
            *b |= fresh;
            if fresh != 0 {
                total += fresh.count_ones();
                on_fresh(w, fresh);
            }
        }
        total
    }

    /// Reference for [`super::popcount_words`].
    #[must_use]
    pub fn popcount_words(words: &[u64]) -> usize {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Reference union of two sorted duplicate-free lists.
    #[must_use]
    pub fn merge_union(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> = a.iter().chain(b).copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Reference exclusives: elements of `src` absent from `d`, sorted.
    #[must_use]
    pub fn exclusives(d: &[u32], src: &[u32]) -> Vec<u32> {
        src.iter()
            .copied()
            .filter(|x| d.binary_search(x).is_err())
            .collect()
    }

    /// Reference word-grouped emission of a sorted fresh-lane list:
    /// `(word, mask)` pairs in ascending word order.
    #[must_use]
    pub fn grouped_masks(news: &[u32]) -> Vec<(usize, u64)> {
        let mut out: Vec<(usize, u64)> = Vec::new();
        for &lane in news {
            let w = (lane / 64) as usize;
            match out.last_mut() {
                Some((lw, mask)) if *lw == w => *mask |= 1u64 << (lane % 64),
                _ => out.push((w, 1u64 << (lane % 64))),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(CHUNK_WORDS * U64_BYTES, SLAB_ALIGN_BYTES);
        assert_eq!(CHUNK_WORDS % UNROLL_WORDS, 0);
    }

    #[test]
    fn aligned_slab_bases_are_aligned_across_resizes() {
        let mut s = AlignedSlab::new();
        assert!(s.is_empty());
        for &len in &[0usize, 1, 7, 8, 9, 64, 257, 1 << 12, 3, 1 << 14] {
            s.resize_zeroed(len);
            assert_eq!(s.len(), len);
            assert!(s.words().iter().all(|&w| w == 0));
            if len > 0 {
                assert_eq!(s.words().as_ptr() as usize % SLAB_ALIGN_BYTES, 0);
            }
            s.words_mut().iter_mut().for_each(|w| *w = !0);
        }
    }

    #[test]
    fn aligned_lanes_stay_aligned_and_ordered_across_growth() {
        let mut a = AlignedLanes::new();
        assert!(a.is_empty());
        a.clear();
        let mut expect = Vec::new();
        for i in 0..10_000u32 {
            if i % 257 == 0 {
                a.extend_from_slice(&[i, i + 1, i + 2]);
                expect.extend_from_slice(&[i, i + 1, i + 2]);
            } else {
                a.push(i);
                expect.push(i);
            }
            assert_eq!(a.as_ptr() as usize % SLAB_ALIGN_BYTES, 0);
        }
        assert_eq!(&a[..], &expect[..]);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.as_ptr() as usize % SLAB_ALIGN_BYTES, 0);
        a.push(7);
        assert_eq!(&a[..], &[7]);
    }

    #[test]
    fn ornot_accumulate_matches_scalar_on_ragged_lengths() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in 0..70usize {
            let a: Vec<u64> = (0..len).map(|_| next()).collect();
            let b: Vec<u64> = (0..len).map(|_| next()).collect();
            let mut d1: Vec<u64> = (0..len).map(|_| next()).collect();
            let mut d2 = d1.clone();
            let any1 = ornot_accumulate(&mut d1, &a, &b);
            let any2 = scalar::ornot_accumulate(&mut d2, &a, &b);
            assert_eq!(d1, d2);
            assert_eq!(any1, any2);
        }
    }

    #[test]
    fn commit_fresh_matches_scalar_and_zeroes_delta() {
        for len in 0..70usize {
            let before: Vec<u64> = (0..len).map(|w| (w as u64).wrapping_mul(0xabcd)).collect();
            let delta: Vec<u64> = (0..len)
                .map(|w| (w as u64).wrapping_mul(0x1234_5678_9abc))
                .collect();
            let (mut d1, mut b1) = (delta.clone(), before.clone());
            let (mut d2, mut b2) = (delta, before);
            let mut e1 = Vec::new();
            let mut e2 = Vec::new();
            let t1 = commit_fresh(&mut d1, &mut b1, |w, f| e1.push((w, f)));
            let t2 = scalar::commit_fresh(&mut d2, &mut b2, |w, f| e2.push((w, f)));
            assert_eq!((&d1, &b1, &e1, t1), (&d2, &b2, &e2, t2));
            assert!(d1.iter().all(|&w| w == 0));
        }
    }

    #[test]
    fn merge_kernels_match_references_across_skews() {
        let a: Vec<u32> = (0..400).map(|i| i * 3).collect();
        let b: Vec<u32> = vec![1, 3, 64, 65, 66, 600, 1199];
        let mut out = Vec::new();
        for (d, s) in [(&a, &b), (&b, &a), (&a, &a), (&b, &b)] {
            let mut got = Vec::new();
            let fresh = merge_into_emitting(d, s, &mut out, 9, 5, &mut |v, w, m, t| {
                assert_eq!((v, t), (9, 5));
                got.push((w, m));
            });
            assert_eq!(out, scalar::merge_union(d, s));
            let excl = scalar::exclusives(d, s);
            assert_eq!(fresh as usize, excl.len());
            assert_eq!(got, scalar::grouped_masks(&excl));
        }
        let mut got_u = Vec::new();
        let mut got_v = Vec::new();
        let (fu, fv) = merge_dual_emitting(&a, &b, &mut out, 1, 2, 7, &mut |v, w, m, _| {
            if v == 1 {
                got_u.push((w, m));
            } else {
                got_v.push((w, m));
            }
        });
        assert_eq!(out, scalar::merge_union(&a, &b));
        assert_eq!(got_u, scalar::grouped_masks(&scalar::exclusives(&a, &b)));
        assert_eq!(got_v, scalar::grouped_masks(&scalar::exclusives(&b, &a)));
        assert_eq!(fu as usize, scalar::exclusives(&a, &b).len());
        assert_eq!(fv as usize, scalar::exclusives(&b, &a).len());
    }

    #[test]
    fn lane_bit_helpers_roundtrip() {
        let lanes: Vec<u32> = vec![0, 1, 63, 64, 65, 127, 128, 300];
        let mut row = vec![0u64; 5];
        set_lane_bits(&mut row, &lanes);
        assert_eq!(popcount_words(&row), lanes.len());
        let mut seen = Vec::new();
        for_each_set_lane(&row, |l| seen.push(l as u32));
        assert_eq!(seen, lanes);
        let mut occ = vec![0u64; 1];
        nonzero_word_mask(&row, &mut occ);
        assert_eq!(occ[0], 0b10111);
        clear_lane_bits(&mut row, &lanes);
        assert!(row.iter().all(|&w| w == 0));
    }
}
