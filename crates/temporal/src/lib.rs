//! # ephemeral-temporal
//!
//! Temporal networks with discrete time labels, after Akrida, Gąsieniec,
//! Mertzios & Spirakis, *"Ephemeral Networks with Random Availability of
//! Links"* (SPAA'14), §2, which in turn extends Kempe–Kleinberg–Kumar
//! (STOC'00) and Mertzios–Michail–Chatzigiannakis–Spirakis (ICALP'13).
//!
//! A **temporal network** `(G, L)` assigns every edge `e` of a (di)graph a
//! finite set `L_e ⊆ {1, …, a}` of discrete availability times (`a` = the
//! network's *lifetime*; the network is *ephemeral* — no edge exists after
//! time `a`). A **journey** is a path whose consecutive edges carry strictly
//! increasing labels; its **arrival time** is the label of its last edge.
//! The **temporal distance** `δ(u, v)` is the minimum arrival time over all
//! `(u, v)`-journeys (the arrival of the *foremost* journey).
//!
//! This crate provides the exact combinatorial layer — random models live in
//! `ephemeral-core`:
//!
//! * [`LabelAssignment`]: CSR storage of per-edge label sets.
//! * [`TemporalNetwork`]: graph + labels + lifetime, with a label-bucketed
//!   time-edge index so journey sweeps run in `O(M + a)` per source, where
//!   `M` is the number of time-edges.
//! * [`foremost`]: earliest-arrival journeys (with reconstruction),
//!   [`reverse`]: latest-departure journeys, [`fastest`]: minimum-duration
//!   journeys, [`hops`]: hop-bounded reachability / fewest-hop journeys.
//! * [`engine`]: the bit-parallel multi-source sweep kernel — up to 64
//!   sources per pass over the time-edge index, with arrivals guaranteed
//!   **bit-identical** to per-source scalar `foremost` sweeps (property
//!   tests in `tests/engine_proptests.rs` enforce this; the scalar sweep
//!   stays as the differential-testing oracle).
//! * [`wide`]: the wide-frontier closure engine — **all `n` sources in a
//!   single time-ordered pass** (`⌈n/64⌉` frontier words per vertex), with
//!   saturation early-exit, empty-bucket skipping over
//!   [`TemporalNetwork::occupied_times`], and deterministic column-block
//!   sharding for intra-instance parallelism; arrivals bit-identical to
//!   both the batched engine and the scalar oracle
//!   (`tests/wide_proptests.rs`).
//! * [`sparse`]: the event-driven sparse-frontier engine — sorted
//!   reacher-lists in an append-only arena with region sharing, so the
//!   per-bucket cost tracks the frontiers that actually changed instead
//!   of `n × ⌈n/64⌉`; arrivals bit-identical to the wide engine, the
//!   batched engine and the scalar oracle (`tests/sparse_proptests.rs`).
//!   The engine shards deterministically over contiguous source blocks
//!   (per-worker arena + agenda, shard-ordered folds bit-identical for
//!   any worker count), compacts its arena under relabel churn, and
//!   serves closure bits through a byte-budgeted streaming block cache
//!   plus a pooled `for_each_reach_row` visitor — an `n = 10⁶` closure
//!   never materialises the `n × ⌈n/64⌉` matrix.
//!   [`sparse::EngineChoice`] is the density-aware dispatch every
//!   all-source entry point runs through: batched below
//!   [`wide::WIDE_CROSSOVER`], then wide for dense/high-degree instances
//!   and event-driven for genuinely sparse ones — with the worker-aware
//!   `pick_parallel` crediting the wide engine's column-block
//!   parallelism when entry points fan out.
//! * [`distance`]: all-pairs temporal distances, temporal eccentricity and
//!   the instance temporal diameter — engine-dispatched through
//!   [`sparse::EngineChoice`].
//! * [`reachability`]: temporal reach sets and the paper's `T_reach`
//!   property ("every static path is matched by a journey", Definition 6) —
//!   engine-dispatched checks with early exit (per batch below the
//!   crossover, probe-block-first above it).
//! * [`closure`]: bit-packed all-pairs reachability computed by whichever
//!   engine the size selects; [`metrics`]: whole-network summary
//!   statistics (temporal efficiency etc.), engine-dispatched the same
//!   way.
//! * [`delta`]: differential closure maintenance — [`delta::DeltaCursor`]
//!   records one all-source sweep (any engine, or dispatched via
//!   [`wide::SweepScratch::record_delta`]) as per-vertex time-ordered
//!   frontier-word logs, and answers [`TemporalNetwork::move_label`]
//!   surgery by retracting only the diverging rows' log suffixes and
//!   replaying buckets from the earlier label onward through a
//!   time-keyed agenda with re-convergence gating; results bit-identical
//!   to cold sweeps after any move sequence, on any recording engine, at
//!   any thread count (`tests/delta_proptests.rs`), and warm applies
//!   allocate nothing (`ephemeral-core`'s allocation regression).
//! * [`session`]: the lane-allocating point-query layer —
//!   [`session::QuerySession`] pins one instance arena-resident and
//!   answers batches of up to 64 point queries (`reaches(u, v, ≤t)`,
//!   `foremost(u, v)`, `distance_row(u, horizon)`) as lanes of a single
//!   [`engine`] pass with per-lane early exit, falls back to the
//!   density-selected full-width engine for row-shaped queries, and
//!   serves target queries straight from a live [`delta`] cursor log;
//!   the `T_reach` probes and batched closure fallbacks share its
//!   lane-pass core, so point and all-pairs code answer from one
//!   semantics contract (`tests/session_proptests.rs`).
//! * [`expanded`]: the Kempe–Kleinberg–Kumar time-expanded graph with
//!   max-flow counting of time-edge-disjoint journeys.
//! * In-place reuse: [`LabelAssignment::refill_single`] /
//!   [`LabelAssignment::refill_with`] redraw labels into existing buffers
//!   and [`TemporalNetwork::replace_assignment`] rebuilds the time-edge
//!   index without reallocating — the zero-allocation per-trial path of the
//!   Monte Carlo estimators in `ephemeral-core`.
//! * [`kernels`]: the single explicit word-kernel layer all three sweep
//!   engines route their inner loops through — unrolled-chunk OR/ANDN
//!   accumulate/commit, popcounts, branch-light (and galloping)
//!   sorted-`u32` merges, and the 64-byte-aligned slab types backing
//!   frontier rows and the sparse arena — each kernel pinned
//!   bit-identical to a naive scalar reference
//!   (`tests/kernel_proptests.rs`). The seam a future GPU/ISPC backend
//!   would replace.
//! * Robustness: every engine ([`engine`], [`wide`], [`sparse`], the
//!   [`delta`] cursor) checks an optional `CancelToken` from
//!   `ephemeral-parallel` at each bucket boundary (armed across a whole
//!   scratch bundle by [`wide::SweepScratch::set_cancel_token`]) and
//!   carries the `engine::bucket` failpoint for deterministic fault
//!   injection; the sparse engine **degrades instead of aborting** under
//!   memory pressure — a word budget
//!   ([`sparse::SparseSweeper::set_arena_budget_words`]) forces arena
//!   evacuations and a tight closure byte budget shrinks row blocks,
//!   both counted in [`wide::WideStats::degraded`] with arrivals
//!   guaranteed unchanged.
//! * [`interval`]: continuous (window) availability with a Dijkstra-style
//!   foremost; [`reference`](mod@reference): the sort-based foremost used
//!   for differential testing and ablation benchmarking.
//!
//! ```
//! use ephemeral_graph::generators;
//! use ephemeral_temporal::{LabelAssignment, TemporalNetwork, foremost};
//!
//! // A 3-path 0—1—2 available as 0—1 at time 1 and 1—2 at time 2.
//! let g = generators::path(3);
//! let labels = LabelAssignment::from_vecs(vec![vec![1], vec![2]]).unwrap();
//! let tn = TemporalNetwork::new(g, labels, 2).unwrap();
//! let run = foremost::foremost(&tn, 0, 0);
//! assert_eq!(run.arrival(2), Some(2));
//! let j = run.journey_to(2).unwrap();
//! assert_eq!(j.hops(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
pub mod closure;
pub mod delta;
pub mod distance;
pub mod engine;
pub mod expanded;
pub mod fastest;
pub mod foremost;
pub mod hops;
pub mod interval;
mod journey;
pub mod kernels;
pub mod metrics;
mod network;
pub mod reachability;
pub mod reference;
pub mod reverse;
pub mod session;
pub mod sparse;
pub mod wide;

pub use assignment::LabelAssignment;
pub use journey::{Journey, JourneyError, TimeEdge};
pub use network::{LabelMove, TemporalError, TemporalNetwork};

/// Discrete time label (`1..=lifetime`).
pub type Time = u32;

/// Sentinel arrival time for "no journey".
pub const NEVER: Time = Time::MAX;
