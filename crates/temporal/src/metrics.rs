//! Whole-network temporal metrics.
//!
//! Summary statistics over all ordered pairs: reachability ratio, average
//! temporal distance, and global **temporal efficiency** — the temporal
//! analogue of static network efficiency,
//! `E = (1/(n(n−1))) · Σ_{s≠t} 1/δ(s,t)` with `1/∞ = 0`, as used in the
//! temporal small-world literature the paper's related-work section
//! surveys. Below the batch crossover the metrics run one scalar foremost
//! sweep per source (parallel over sources); above it they run through
//! the full-width engine the density-aware
//! [`EngineChoice`] selects —
//! [`wide`](crate::wide) on dense instances, event-driven
//! [`sparse`](crate::sparse) on sparse ones — accumulating each source's
//! row in vertex order so every number — including the floating-point
//! sums — is bit-identical to the scalar path and invariant under the
//! thread count.

use crate::foremost::foremost;
use crate::network::TemporalNetwork;
use crate::sparse::{EngineChoice, FrontierRun};
use crate::wide::{source_blocks, FrontierEngine};
use crate::{Time, NEVER};
use ephemeral_graph::NodeId;
use ephemeral_parallel::{par_for, par_map_with};
use std::ops::Range;

/// All-pairs summary metrics of one temporal network instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalMetrics {
    /// Number of vertices.
    pub n: usize,
    /// Ordered pairs `(s, t)`, `s ≠ t`, connected by a journey.
    pub reachable_pairs: usize,
    /// `reachable_pairs / (n(n−1))` (1.0 for temporally connected nets).
    pub reachability_ratio: f64,
    /// Mean `δ(s,t)` over reachable ordered pairs (0 if none).
    pub avg_temporal_distance: f64,
    /// Largest finite `δ(s,t)` (the instance temporal diameter when
    /// everything is reachable).
    pub max_temporal_distance: u32,
    /// Global temporal efficiency `E ∈ [0, 1]`-ish (unreachable pairs
    /// contribute 0; one-step pairs contribute 1).
    pub temporal_efficiency: f64,
}

/// One full-width `arrivals_into` per column block through engine `S`,
/// each source's row accumulated in vertex order (bit-identical to the
/// scalar fold).
fn metric_blocks<S: FrontierEngine>(
    tn: &TemporalNetwork,
    threads: usize,
    blocks: &[Range<NodeId>],
) -> Vec<(usize, u64, u32, f64)> {
    let n = tn.num_nodes();
    let init = || (S::default(), Vec::new());
    par_map_with(blocks, threads, init, |(sweeper, rows), _, block| {
        rows.clear();
        rows.resize(block.len() * n, NEVER);
        sweeper.arrivals_into(tn, block.clone(), 0, rows);
        block
            .clone()
            .enumerate()
            .map(|(lane, s)| accumulate_row(s as usize, &rows[lane * n..(lane + 1) * n]))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Per-source accumulation of one arrival row, in vertex order — shared
/// by the scalar and full-width paths so their floating-point sums agree
/// bit for bit.
fn accumulate_row(s: usize, arrivals: &[Time]) -> (usize, u64, u32, f64) {
    let mut reach = 0usize;
    let mut sum = 0u64;
    let mut max = 0u32;
    let mut eff = 0.0f64;
    for (v, &a) in arrivals.iter().enumerate() {
        if v == s || a == NEVER {
            continue;
        }
        reach += 1;
        sum += u64::from(a);
        max = max.max(a);
        // δ(s,t) ≥ 1 always (labels start at 1), so 1/δ ≤ 1.
        eff += 1.0 / f64::from(a.max(1));
    }
    (reach, sum, max, eff)
}

/// Compute the metrics: one parallel foremost sweep per source below the
/// batch crossover, full-width sweeps (one per column block, wide or
/// sparse per the density dispatch) above it.
#[must_use]
pub fn temporal_metrics(tn: &TemporalNetwork, threads: usize) -> TemporalMetrics {
    let n = tn.num_nodes();
    if n <= 1 {
        return TemporalMetrics {
            n,
            reachable_pairs: 0,
            reachability_ratio: 1.0,
            avg_temporal_distance: 0.0,
            max_temporal_distance: 0,
            temporal_efficiency: 0.0,
        };
    }
    struct Metrics<'a> {
        tn: &'a TemporalNetwork,
        threads: usize,
    }
    impl FrontierRun for Metrics<'_> {
        type Out = Vec<(usize, u64, u32, f64)>;
        fn run<S: FrontierEngine>(self, shards: usize) -> Self::Out {
            let blocks = source_blocks(self.tn.num_nodes(), shards);
            metric_blocks::<S>(self.tn, self.threads, &blocks)
        }
    }
    let per_source =
        EngineChoice::dispatch(tn, threads, Metrics { tn, threads }).unwrap_or_else(|| {
            par_for(n, threads, |s| {
                accumulate_row(s, foremost(tn, s as NodeId, 0).arrivals())
            })
        });
    let mut reachable_pairs = 0usize;
    let mut sum = 0u64;
    let mut max = 0u32;
    let mut eff = 0.0f64;
    for (r, s, m, e) in per_source {
        reachable_pairs += r;
        sum += s;
        max = max.max(m);
        eff += e;
    }
    let pairs = n * (n - 1);
    TemporalMetrics {
        n,
        reachable_pairs,
        reachability_ratio: reachable_pairs as f64 / pairs as f64,
        avg_temporal_distance: if reachable_pairs == 0 {
            0.0
        } else {
            sum as f64 / reachable_pairs as f64
        },
        max_temporal_distance: max,
        temporal_efficiency: eff / pairs as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelAssignment;
    use ephemeral_graph::{generators, GraphBuilder};

    #[test]
    fn metrics_on_increasing_path() {
        let g = generators::path(3);
        let labels = LabelAssignment::single(vec![1, 2]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 2).unwrap();
        let m = temporal_metrics(&tn, 2);
        assert_eq!(m.n, 3);
        // Journeys: 0→1(@1), 0→2(@2), 1→2(@2), 1→0? label 1 only: 1→0 needs
        // label... edge 0-1 has label 1: yes 1→0 @1. 2→1 @2, 2→0 impossible
        // (2→1 arrives at 2, edge 0-1 label 1 < 2).
        assert_eq!(m.reachable_pairs, 5);
        assert!((m.reachability_ratio - 5.0 / 6.0).abs() < 1e-12);
        // Distances: 1,2,2,1,2 → avg 8/5.
        assert!((m.avg_temporal_distance - 1.6).abs() < 1e-12);
        assert_eq!(m.max_temporal_distance, 2);
        // Efficiency: (1 + 0.5 + 0.5 + 1 + 0.5)/6.
        assert!((m.temporal_efficiency - 3.5 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn fully_connected_instant_network_is_maximally_efficient() {
        let g = generators::clique(5, false);
        let labels = LabelAssignment::from_vecs(vec![vec![1]; 10]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 1).unwrap();
        let m = temporal_metrics(&tn, 1);
        assert_eq!(m.reachability_ratio, 1.0);
        assert_eq!(m.avg_temporal_distance, 1.0);
        assert_eq!(m.temporal_efficiency, 1.0);
        assert_eq!(m.max_temporal_distance, 1);
    }

    #[test]
    fn unlabelled_network_has_zero_reach() {
        let g = generators::cycle(4);
        let labels = LabelAssignment::from_vecs(vec![vec![]; 4]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 1).unwrap();
        let m = temporal_metrics(&tn, 1);
        assert_eq!(m.reachable_pairs, 0);
        assert_eq!(m.reachability_ratio, 0.0);
        assert_eq!(m.temporal_efficiency, 0.0);
        assert_eq!(m.avg_temporal_distance, 0.0);
    }

    #[test]
    fn degenerate_networks() {
        let g = GraphBuilder::new_undirected(1).build().unwrap();
        let labels = LabelAssignment::from_vecs(vec![]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 1).unwrap();
        let m = temporal_metrics(&tn, 1);
        assert_eq!(m.n, 1);
        assert_eq!(m.reachability_ratio, 1.0);
    }

    #[test]
    fn thread_invariance() {
        let g = generators::grid(4, 4);
        let labels = LabelAssignment::from_fn(g.num_edges(), |e| vec![1 + e % 7]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 7).unwrap();
        assert_eq!(temporal_metrics(&tn, 1), temporal_metrics(&tn, 4));
    }

    #[test]
    fn wide_path_is_bit_identical_to_the_scalar_fold() {
        // Above the crossover the wide engine serves the metrics; every
        // number — floating-point sums included — must match a scalar
        // per-source fold exactly, for any thread count.
        use crate::foremost::foremost;
        use ephemeral_rng::{RandomSource, SeedSequence};
        let n = crate::wide::WIDE_CROSSOVER + 8;
        let mut rng = SeedSequence::new(3).rng(1);
        let g = generators::gnp(n, 0.05, false, &mut rng);
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, 50)]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 50).unwrap();
        let wide = temporal_metrics(&tn, 1);
        assert_eq!(wide, temporal_metrics(&tn, 4));
        let mut reach = 0usize;
        let mut sum = 0u64;
        let mut max = 0u32;
        let mut eff = 0.0f64;
        for s in 0..n {
            let (r, su, m, e) = {
                let run = foremost(&tn, s as u32, 0);
                super::accumulate_row(s, run.arrivals())
            };
            reach += r;
            sum += su;
            max = max.max(m);
            eff += e;
        }
        assert_eq!(wide.reachable_pairs, reach);
        assert_eq!(wide.max_temporal_distance, max);
        let pairs = (n * (n - 1)) as f64;
        assert_eq!(wide.temporal_efficiency.to_bits(), (eff / pairs).to_bits());
        assert_eq!(
            wide.avg_temporal_distance.to_bits(),
            (sum as f64 / reach as f64).to_bits()
        );
    }
}
