//! The temporal network type: graph + label assignment + lifetime, with a
//! label-bucketed time-edge index for `O(M + a)` journey sweeps.

use crate::assignment::LabelAssignment;
use crate::Time;
use ephemeral_graph::{EdgeId, Graph};
use std::fmt;

/// Construction-time validation failures for [`TemporalNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemporalError {
    /// Assignment covers a different number of edges than the graph has.
    EdgeCountMismatch {
        /// Edges in the graph.
        graph_edges: usize,
        /// Edges in the assignment.
        assignment_edges: usize,
    },
    /// A label exceeds the declared lifetime.
    LabelBeyondLifetime {
        /// The offending edge.
        edge: EdgeId,
        /// The offending label.
        label: Time,
        /// The declared lifetime.
        lifetime: Time,
    },
    /// Lifetime must be at least 1.
    ZeroLifetime,
}

impl fmt::Display for TemporalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EdgeCountMismatch {
                graph_edges,
                assignment_edges,
            } => write!(
                f,
                "label assignment covers {assignment_edges} edges but the graph has {graph_edges}"
            ),
            Self::LabelBeyondLifetime {
                edge,
                label,
                lifetime,
            } => write!(
                f,
                "edge {edge} carries label {label} beyond the lifetime {lifetime}"
            ),
            Self::ZeroLifetime => write!(f, "lifetime must be at least 1"),
        }
    }
}

impl std::error::Error for TemporalError {}

/// A single-label move applied by [`TemporalNetwork::move_label`] — the
/// unit of work the differential cursor
/// ([`crate::delta::DeltaCursor::apply_label_move`]) retracts and replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelMove {
    /// The edge whose label moved.
    pub edge: EdgeId,
    /// The label that was removed.
    pub from: Time,
    /// The label that was added.
    pub to: Time,
}

impl LabelMove {
    /// The earlier of the two affected times — the first bucket whose
    /// contents change, hence where a differential replay must restart.
    #[must_use]
    pub fn earliest(&self) -> Time {
        self.from.min(self.to)
    }

    /// The later of the two affected times — past it the bucket sequence
    /// is identical to the pre-move network again.
    #[must_use]
    pub fn latest(&self) -> Time {
        self.from.max(self.to)
    }
}

/// An ephemeral temporal network `(G, L)` with lifetime `a` (Definition 1).
///
/// Owns a bucket index mapping each time `t ∈ {1, …, a}` to the edges
/// available at `t`; every journey algorithm in this crate sweeps that index
/// instead of sorting time-edges, giving `O(M + a)` per source.
#[derive(Debug, Clone)]
pub struct TemporalNetwork {
    graph: Graph,
    assignment: LabelAssignment,
    lifetime: Time,
    /// CSR bucket index (length `lifetime + 2`): edges available at time `t`
    /// are `bucket_edges[bucket_offsets[t] .. bucket_offsets[t+1]]`.
    bucket_offsets: Vec<u32>,
    bucket_edges: Vec<u32>,
    /// Sorted times with a non-empty bucket — the skip list sparse sweeps
    /// iterate instead of probing all `a` buckets (at most
    /// `min(a, M)` entries).
    occupied: Vec<Time>,
}

impl TemporalNetwork {
    /// Validate and index a temporal network.
    ///
    /// # Errors
    /// See [`TemporalError`].
    pub fn new(
        graph: Graph,
        assignment: LabelAssignment,
        lifetime: Time,
    ) -> Result<Self, TemporalError> {
        validate(&graph, &assignment, lifetime)?;
        let mut tn = Self {
            graph,
            assignment,
            lifetime,
            bucket_offsets: Vec::new(),
            bucket_edges: Vec::new(),
            occupied: Vec::new(),
        };
        tn.rebuild_buckets();
        Ok(tn)
    }

    /// Replace the label assignment in place — the per-trial path of the
    /// Monte Carlo estimators. Validates the incoming assignment, rebuilds
    /// the bucket index **reusing its existing allocations**, and returns
    /// the previous assignment so its buffers can serve as the next draw's
    /// scratch (see `LabelAssignment::refill_single`). On error the network
    /// is unchanged and the incoming assignment is dropped.
    ///
    /// # Errors
    /// See [`TemporalError`] (the lifetime stays as constructed).
    pub fn replace_assignment(
        &mut self,
        assignment: LabelAssignment,
    ) -> Result<LabelAssignment, TemporalError> {
        validate(&self.graph, &assignment, self.lifetime)?;
        let old = std::mem::replace(&mut self.assignment, assignment);
        self.rebuild_buckets();
        Ok(old)
    }

    /// Counting sort of (label, edge) pairs into the bucket index, reusing
    /// the index vectors' capacity (no allocation once warm). Also rebuilds
    /// the occupied-times skip list: `occupied` can never exceed
    /// `min(lifetime, total_labels)` entries, so one up-front reserve makes
    /// every later rebuild allocation-free.
    fn rebuild_buckets(&mut self) {
        let Self {
            assignment,
            lifetime,
            bucket_offsets,
            bucket_edges,
            occupied,
            ..
        } = self;
        let total = assignment.total_labels();
        bucket_offsets.clear();
        bucket_offsets.resize(*lifetime as usize + 2, 0);
        for (_, l) in assignment.iter() {
            bucket_offsets[l as usize + 1] += 1;
        }
        for i in 1..bucket_offsets.len() {
            bucket_offsets[i] += bucket_offsets[i - 1];
        }
        bucket_edges.clear();
        bucket_edges.resize(total, 0);
        // Place each edge at its bucket's cursor, advancing the cursor in
        // the offsets array itself; every offset then holds its successor's
        // start, so a shift-right restores the index without a scratch copy.
        for (e, l) in assignment.iter() {
            let slot = bucket_offsets[l as usize] as usize;
            bucket_edges[slot] = e;
            bucket_offsets[l as usize] += 1;
        }
        let len = bucket_offsets.len();
        bucket_offsets.copy_within(0..len - 1, 1);
        bucket_offsets[0] = 0;
        occupied.clear();
        occupied.reserve(total.min(*lifetime as usize));
        for t in 1..=*lifetime as usize {
            if bucket_offsets[t + 1] > bucket_offsets[t] {
                occupied.push(t as Time);
            }
        }
    }

    /// Move one label of edge `e` from `from` to `to`, repairing the
    /// bucket index and the occupied-times skip list **in place** — the
    /// single-label resampling step of the differential closure cursor
    /// (see [`crate::delta`]). Instead of the `O(M + a)` counting-sort
    /// rebuild of [`TemporalNetwork::replace_assignment`], the edge is
    /// pulled to the boundary of its old bucket and the hole is propagated
    /// across the intermediate buckets (each donates one element to its
    /// neighbour), so the cost is `O(|bucket(from)| + |from − to|)` and no
    /// allocation ever happens (`occupied` was reserved to its hard cap at
    /// rebuild time). Bucket contents are preserved as **sets**; the order
    /// of edges within a bucket may differ from a fresh rebuild, which no
    /// sweep result depends on (a whole bucket commits at once).
    ///
    /// Returns `None` and leaves the network unchanged when `e` is out of
    /// range, `to` is zero or beyond the lifetime, edge `e` does not carry
    /// `from`, or it already carries `to` (including `from == to`).
    pub fn move_label(&mut self, e: EdgeId, from: Time, to: Time) -> Option<LabelMove> {
        if to == 0 || to > self.lifetime || (e as usize) >= self.assignment.num_edges() {
            return None;
        }
        if !self.assignment.move_label(e, from, to) {
            return None;
        }
        let lo = self.bucket_offsets[from as usize] as usize;
        let hi = self.bucket_offsets[from as usize + 1] as usize;
        let p = lo
            + self.bucket_edges[lo..hi]
                .iter()
                .position(|&x| x == e)
                .expect("edge is present in its own bucket");
        if from < to {
            // Pull `e` to the top of its bucket, then let each bucket in
            // between donate its last element downward into the hole; the
            // final hole is the first slot of `to`'s bucket once the
            // boundaries shift left.
            let mut hole = hi - 1;
            self.bucket_edges.swap(p, hole);
            for t in (from + 1)..to {
                let last = self.bucket_offsets[t as usize + 1] as usize - 1;
                self.bucket_edges[hole] = self.bucket_edges[last];
                hole = last;
            }
            self.bucket_edges[hole] = e;
            for t in (from + 1)..=to {
                self.bucket_offsets[t as usize] -= 1;
            }
        } else {
            // Mirror image: pull `e` to the bottom of its bucket and
            // propagate the hole downward, shifting boundaries right.
            let mut hole = lo;
            self.bucket_edges.swap(p, hole);
            for t in ((to + 1)..from).rev() {
                let first = self.bucket_offsets[t as usize] as usize;
                self.bucket_edges[hole] = self.bucket_edges[first];
                hole = first;
            }
            self.bucket_edges[hole] = e;
            for t in (to + 1)..=from {
                self.bucket_offsets[t as usize] += 1;
            }
        }
        if self.edges_at(from).is_empty() {
            if let Ok(i) = self.occupied.binary_search(&from) {
                self.occupied.remove(i);
            }
        }
        if let Err(i) = self.occupied.binary_search(&to) {
            self.occupied.insert(i, to);
        }
        Some(LabelMove { edge: e, from, to })
    }

    /// Convenience: lifetime defaults to the maximum label present (or 1
    /// for an unlabelled network).
    ///
    /// # Errors
    /// See [`TemporalError`].
    pub fn with_inferred_lifetime(
        graph: Graph,
        assignment: LabelAssignment,
    ) -> Result<Self, TemporalError> {
        let lifetime = assignment.max_label().unwrap_or(1);
        Self::new(graph, assignment, lifetime)
    }

    /// The underlying static graph `G`.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The label assignment `L`.
    #[must_use]
    pub fn assignment(&self) -> &LabelAssignment {
        &self.assignment
    }

    /// Sorted labels of edge `e`.
    #[inline]
    #[must_use]
    pub fn labels(&self, e: EdgeId) -> &[Time] {
        self.assignment.labels(e)
    }

    /// The lifetime `a`.
    #[must_use]
    pub const fn lifetime(&self) -> Time {
        self.lifetime
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of time-edges `M = Σ_e |L_e|` (for undirected networks each
    /// label serves both directions but is counted once, matching the
    /// paper's accounting of labels).
    #[must_use]
    pub fn num_time_edges(&self) -> usize {
        self.assignment.total_labels()
    }

    /// The edges available at time `t` (`1 ≤ t ≤ lifetime`); empty slice
    /// otherwise.
    #[inline]
    #[must_use]
    pub fn edges_at(&self, t: Time) -> &[u32] {
        if t == 0 || t > self.lifetime {
            return &[];
        }
        let lo = self.bucket_offsets[t as usize] as usize;
        let hi = self.bucket_offsets[t as usize + 1] as usize;
        &self.bucket_edges[lo..hi]
    }

    /// Sorted times `t` with at least one edge available at `t` — the skip
    /// list that lets sparse sweeps visit `O(occupied)` buckets instead of
    /// probing all `a` of them (see [`crate::wide::WideSweeper`]). Rebuilt
    /// in place by [`TemporalNetwork::replace_assignment`] without
    /// allocating once warm.
    #[inline]
    #[must_use]
    pub fn occupied_times(&self) -> &[Time] {
        &self.occupied
    }

    /// The occupied times in `(after, upto]` (clamped to the lifetime;
    /// empty when the window is) — the window a sweep with start time
    /// `after` and horizon `upto` visits.
    #[must_use]
    pub fn occupied_between(&self, after: Time, upto: Time) -> &[Time] {
        let upto = upto.min(self.lifetime);
        let lo = self.occupied.partition_point(|&t| t <= after);
        let hi = self.occupied.partition_point(|&t| t <= upto);
        &self.occupied[lo.min(hi)..hi]
    }

    /// Deconstruct into graph and assignment.
    #[must_use]
    pub fn into_parts(self) -> (Graph, LabelAssignment) {
        (self.graph, self.assignment)
    }
}

/// The construction-time checks, shared by [`TemporalNetwork::new`] and
/// [`TemporalNetwork::replace_assignment`].
fn validate(
    graph: &Graph,
    assignment: &LabelAssignment,
    lifetime: Time,
) -> Result<(), TemporalError> {
    if lifetime == 0 {
        return Err(TemporalError::ZeroLifetime);
    }
    if graph.num_edges() != assignment.num_edges() {
        return Err(TemporalError::EdgeCountMismatch {
            graph_edges: graph.num_edges(),
            assignment_edges: assignment.num_edges(),
        });
    }
    for e in 0..assignment.num_edges() as u32 {
        if let Some(&label) = assignment.labels(e).last() {
            if label > lifetime {
                return Err(TemporalError::LabelBeyondLifetime {
                    edge: e,
                    label,
                    lifetime,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_graph::generators;

    fn tiny() -> TemporalNetwork {
        // Path 0—1—2—3 with labels {1,3}, {2}, {3}.
        let g = generators::path(4);
        let a = LabelAssignment::from_vecs(vec![vec![1, 3], vec![2], vec![3]]).unwrap();
        TemporalNetwork::new(g, a, 4).unwrap()
    }

    #[test]
    fn bucket_index_matches_assignment() {
        let tn = tiny();
        assert_eq!(tn.edges_at(1), &[0]);
        assert_eq!(tn.edges_at(2), &[1]);
        {
            let mut at3 = tn.edges_at(3).to_vec();
            at3.sort_unstable();
            assert_eq!(at3, vec![0, 2]);
        }
        assert_eq!(tn.edges_at(4), &[] as &[u32]);
        assert_eq!(tn.edges_at(0), &[] as &[u32]);
        assert_eq!(tn.edges_at(99), &[] as &[u32]);
    }

    #[test]
    fn counts() {
        let tn = tiny();
        assert_eq!(tn.num_nodes(), 4);
        assert_eq!(tn.num_time_edges(), 4);
        assert_eq!(tn.lifetime(), 4);
        assert_eq!(tn.labels(0), &[1, 3]);
    }

    #[test]
    fn rejects_mismatched_edge_count() {
        let g = generators::path(3); // 2 edges
        let a = LabelAssignment::single(vec![1]).unwrap(); // 1 edge
        assert_eq!(
            TemporalNetwork::new(g, a, 3).unwrap_err(),
            TemporalError::EdgeCountMismatch {
                graph_edges: 2,
                assignment_edges: 1
            }
        );
    }

    #[test]
    fn rejects_label_beyond_lifetime() {
        let g = generators::path(3);
        let a = LabelAssignment::from_vecs(vec![vec![1], vec![5]]).unwrap();
        assert_eq!(
            TemporalNetwork::new(g, a, 4).unwrap_err(),
            TemporalError::LabelBeyondLifetime {
                edge: 1,
                label: 5,
                lifetime: 4
            }
        );
    }

    #[test]
    fn rejects_zero_lifetime() {
        let g = generators::path(2);
        let a = LabelAssignment::single(vec![1]).unwrap();
        assert_eq!(
            TemporalNetwork::new(g, a, 0).unwrap_err(),
            TemporalError::ZeroLifetime
        );
    }

    #[test]
    fn inferred_lifetime_is_max_label() {
        let g = generators::path(3);
        let a = LabelAssignment::from_vecs(vec![vec![2], vec![7]]).unwrap();
        let tn = TemporalNetwork::with_inferred_lifetime(g, a).unwrap();
        assert_eq!(tn.lifetime(), 7);
    }

    #[test]
    fn inferred_lifetime_of_unlabelled_network_is_one() {
        let g = generators::path(3);
        let a = LabelAssignment::from_vecs(vec![vec![], vec![]]).unwrap();
        let tn = TemporalNetwork::with_inferred_lifetime(g, a).unwrap();
        assert_eq!(tn.lifetime(), 1);
        assert_eq!(tn.edges_at(1), &[] as &[u32]);
    }

    #[test]
    fn empty_label_sets_are_allowed() {
        let g = generators::path(3);
        let a = LabelAssignment::from_vecs(vec![vec![], vec![1]]).unwrap();
        let tn = TemporalNetwork::new(g, a, 2).unwrap();
        assert_eq!(tn.num_time_edges(), 1);
    }

    #[test]
    fn error_display() {
        let e = TemporalError::LabelBeyondLifetime {
            edge: 3,
            label: 9,
            lifetime: 5,
        };
        assert!(e.to_string().contains("label 9"));
        assert!(TemporalError::ZeroLifetime
            .to_string()
            .contains("at least 1"));
        let m = TemporalError::EdgeCountMismatch {
            graph_edges: 2,
            assignment_edges: 1,
        };
        assert!(m.to_string().contains("covers 1"));
    }

    #[test]
    fn replace_assignment_rebuilds_the_bucket_index() {
        let mut tn = tiny();
        let fresh = LabelAssignment::from_vecs(vec![vec![4], vec![1, 4], vec![2]]).unwrap();
        let old = tn.replace_assignment(fresh).unwrap();
        assert_eq!(old.labels(0), &[1, 3], "previous assignment handed back");
        assert_eq!(tn.edges_at(1), &[1]);
        assert_eq!(tn.edges_at(2), &[2]);
        assert_eq!(tn.edges_at(3), &[] as &[u32]);
        {
            let mut at4 = tn.edges_at(4).to_vec();
            at4.sort_unstable();
            assert_eq!(at4, vec![0, 1]);
        }
        // The rebuilt index is indistinguishable from a fresh construction.
        let rebuilt =
            TemporalNetwork::new(tn.graph().clone(), tn.assignment().clone(), tn.lifetime())
                .unwrap();
        for t in 0..=5 {
            assert_eq!(tn.edges_at(t), rebuilt.edges_at(t), "time {t}");
        }
    }

    #[test]
    fn replace_assignment_rejects_invalid_and_keeps_state() {
        let mut tn = tiny();
        let bad = LabelAssignment::from_vecs(vec![vec![9], vec![2], vec![3]]).unwrap();
        assert_eq!(
            tn.replace_assignment(bad).unwrap_err(),
            TemporalError::LabelBeyondLifetime {
                edge: 0,
                label: 9,
                lifetime: 4
            }
        );
        // The original network is untouched.
        assert_eq!(tn.labels(0), &[1, 3]);
        assert_eq!(tn.edges_at(1), &[0]);
        let short = LabelAssignment::single(vec![1]).unwrap();
        assert!(matches!(
            tn.replace_assignment(short).unwrap_err(),
            TemporalError::EdgeCountMismatch { .. }
        ));
    }

    #[test]
    fn occupied_times_match_nonempty_buckets() {
        let tn = tiny(); // labels {1,3}, {2}, {3}; lifetime 4
        assert_eq!(tn.occupied_times(), &[1, 2, 3]);
        let brute: Vec<Time> = (1..=tn.lifetime())
            .filter(|&t| !tn.edges_at(t).is_empty())
            .collect();
        assert_eq!(tn.occupied_times(), brute.as_slice());
    }

    #[test]
    fn occupied_between_windows() {
        let tn = tiny();
        assert_eq!(tn.occupied_between(0, 4), &[1, 2, 3]);
        assert_eq!(tn.occupied_between(1, 4), &[2, 3]);
        assert_eq!(tn.occupied_between(0, 2), &[1, 2]);
        assert_eq!(tn.occupied_between(2, 2), &[] as &[Time]);
        // The horizon clamps to the lifetime.
        assert_eq!(tn.occupied_between(0, 99), &[1, 2, 3]);
        assert_eq!(tn.occupied_between(3, 99), &[] as &[Time]);
    }

    #[test]
    fn replace_assignment_rebuilds_the_occupied_index() {
        let mut tn = tiny();
        let fresh = LabelAssignment::from_vecs(vec![vec![4], vec![1, 4], vec![2]]).unwrap();
        tn.replace_assignment(fresh).unwrap();
        assert_eq!(tn.occupied_times(), &[1, 2, 4]);
        // An unlabelled replacement empties the index.
        let empty = LabelAssignment::from_vecs(vec![vec![], vec![], vec![]]).unwrap();
        tn.replace_assignment(empty).unwrap();
        assert_eq!(tn.occupied_times(), &[] as &[Time]);
        assert_eq!(tn.occupied_between(0, 4), &[] as &[Time]);
    }

    /// The moved network must be indistinguishable (as bucket *sets* and
    /// occupied times) from a fresh construction over the moved
    /// assignment.
    fn assert_matches_fresh_rebuild(tn: &TemporalNetwork) {
        let rebuilt =
            TemporalNetwork::new(tn.graph().clone(), tn.assignment().clone(), tn.lifetime())
                .unwrap();
        for t in 0..=tn.lifetime() + 1 {
            let mut got = tn.edges_at(t).to_vec();
            let mut want = rebuilt.edges_at(t).to_vec();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "bucket {t}");
        }
        assert_eq!(tn.occupied_times(), rebuilt.occupied_times());
    }

    #[test]
    fn move_label_up_and_down_matches_fresh_rebuild() {
        let mut tn = tiny(); // {1,3}, {2}, {3}, lifetime 4
        let mv = tn.move_label(1, 2, 4).unwrap();
        assert_eq!(
            mv,
            LabelMove {
                edge: 1,
                from: 2,
                to: 4
            }
        );
        assert_eq!((mv.earliest(), mv.latest()), (2, 4));
        assert_eq!(tn.labels(1), &[4]);
        assert_matches_fresh_rebuild(&tn);
        assert_eq!(tn.occupied_times(), &[1, 3, 4], "bucket 2 emptied");
        // Downward, multi-label edge: move 0's label 3 to 2.
        let mv = tn.move_label(0, 3, 2).unwrap();
        assert_eq!((mv.earliest(), mv.latest()), (2, 3));
        assert_eq!(tn.labels(0), &[1, 2]);
        assert_matches_fresh_rebuild(&tn);
        // Long-distance hole propagation across empty buckets.
        tn.move_label(0, 1, 4).unwrap();
        assert_matches_fresh_rebuild(&tn);
        tn.move_label(0, 4, 1).unwrap();
        assert_matches_fresh_rebuild(&tn);
    }

    #[test]
    fn move_label_random_sequences_match_fresh_rebuilds() {
        use ephemeral_rng::{RandomSource, SeedSequence};
        let mut rng = SeedSequence::new(99).rng(0);
        let g = generators::gnp(30, 0.2, false, &mut rng);
        let m = g.num_edges();
        let lifetime = 17;
        let a = LabelAssignment::from_fn(m, |_| {
            vec![rng.range_u32(1, lifetime), rng.range_u32(1, lifetime)]
        })
        .unwrap();
        let mut tn = TemporalNetwork::new(g, a, lifetime).unwrap();
        let mut applied = 0;
        for _ in 0..200 {
            let e = rng.index(m) as u32;
            let labels = tn.labels(e);
            let from = labels[rng.index(labels.len())];
            let to = rng.range_u32(1, lifetime);
            if tn.move_label(e, from, to).is_some() {
                applied += 1;
                assert!(tn.labels(e).contains(&to));
            }
        }
        assert!(applied > 100, "most random moves should apply");
        assert_matches_fresh_rebuild(&tn);
    }

    #[test]
    fn move_label_rejects_invalid_moves_unchanged() {
        let mut tn = tiny();
        let before = tn.clone();
        assert!(tn.move_label(0, 1, 0).is_none(), "zero label");
        assert!(tn.move_label(0, 1, 5).is_none(), "beyond lifetime");
        assert!(tn.move_label(9, 1, 2).is_none(), "edge out of range");
        assert!(tn.move_label(0, 2, 4).is_none(), "absent source label");
        assert!(tn.move_label(0, 1, 3).is_none(), "collision");
        assert!(tn.move_label(0, 1, 1).is_none(), "from == to");
        assert_eq!(tn.labels(0), before.labels(0));
        for t in 0..=5 {
            assert_eq!(tn.edges_at(t), before.edges_at(t), "time {t}");
        }
        assert_eq!(tn.occupied_times(), before.occupied_times());
    }

    #[test]
    fn into_parts_roundtrip() {
        let tn = tiny();
        let (g, a) = tn.into_parts();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(a.total_labels(), 4);
    }
}
