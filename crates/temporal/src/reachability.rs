//! Temporal reachability and the paper's `T_reach` property.
//!
//! Definition 6: an assignment `L` **preserves the reachability** of `G`
//! when for all `u, v`: a `(u, v)`-path exists in `G` **iff** a
//! `(u, v)`-journey exists in `(G, L)`. Journeys are paths, so only the
//! forward implication can fail; the check therefore compares per-source
//! reach *counts* of static BFS and the temporal sweep. The whole-network
//! checks run 64 sources per pass through the bit-parallel
//! [`engine`](crate::engine), with early exit at batch granularity; the
//! single-source helpers stay on the scalar `foremost` oracle.

use crate::engine::{batch_count, batch_range, BatchSweeper, MAX_LANES};
use crate::foremost::foremost;
use crate::network::TemporalNetwork;
use crate::{Time, NEVER};
use ephemeral_graph::algo::{bfs_distances, connected_components, UNREACHABLE};
use ephemeral_graph::NodeId;
use ephemeral_parallel::par_for_with;
use std::sync::atomic::{AtomicBool, Ordering};

/// Which vertices admit a journey from `source` (the source included).
#[must_use]
pub fn temporal_reach(tn: &TemporalNetwork, source: NodeId) -> Vec<bool> {
    foremost(tn, source, 0)
        .arrivals()
        .iter()
        .map(|&a| a != NEVER)
        .collect()
}

/// Number of vertices reachable by journeys from `source` (incl. itself).
#[must_use]
pub fn temporal_reach_count(tn: &TemporalNetwork, source: NodeId) -> usize {
    foremost(tn, source, 0).reached_count()
}

/// Is every ordered pair `(s, t)` connected by a journey? (The clique with
/// one label per edge trivially satisfies this; most sparse networks do
/// not.) One engine sweep per batch of 64 sources, with early exit at batch
/// granularity.
#[must_use]
pub fn is_temporally_connected(tn: &TemporalNetwork, threads: usize) -> bool {
    let n = tn.num_nodes();
    if n <= 1 {
        return true;
    }
    let failed = AtomicBool::new(false);
    par_for_with(batch_count(n), threads, BatchSweeper::new, |sweeper, b| {
        if failed.load(Ordering::Relaxed) {
            return;
        }
        let sources: Vec<NodeId> = batch_range(n, b).collect();
        let stats = sweeper.sweep(tn, &sources, 0, |_, _, _| {});
        if !stats.all_reached(n) {
            failed.store(true, Ordering::Relaxed);
        }
    });
    !failed.load(Ordering::Relaxed)
}

/// Per-lane temporal reach counts of one engine batch: each source counts
/// itself plus one per newly-reached vertex.
fn batch_reach_counts(
    tn: &TemporalNetwork,
    sweeper: &mut BatchSweeper,
    sources: &[NodeId],
) -> [usize; MAX_LANES] {
    let mut counts = [0usize; MAX_LANES];
    for c in counts.iter_mut().take(sources.len()) {
        *c = 1;
    }
    sweeper.sweep(tn, sources, 0, |_, mut lanes, _: Time| {
        while lanes != 0 {
            counts[lanes.trailing_zeros() as usize] += 1;
            lanes &= lanes - 1;
        }
    });
    counts
}

/// Does the assignment preserve reachability (`T_reach`, Definition 6)?
///
/// Per source `s`, the set of temporally reachable vertices must equal the
/// set of statically reachable vertices; since journeys are paths, equality
/// of counts suffices. Temporal counts come from engine batches of 64
/// sources, parallel over batches with early exit; static counts come from
/// a single union–find components pass when the graph is undirected
/// (`O(M)` total — component size = reach count), or one BFS per source
/// for directed graphs.
#[must_use]
pub fn treach_holds(tn: &TemporalNetwork, threads: usize) -> bool {
    let n = tn.num_nodes();
    if n <= 1 {
        return true;
    }
    let components = (!tn.graph().is_directed()).then(|| connected_components(tn.graph()));
    let static_reach = |s: NodeId| -> usize {
        match &components {
            Some(c) => c.sizes[c.labels[s as usize] as usize] as usize,
            None => bfs_distances(tn.graph(), s)
                .iter()
                .filter(|&&d| d != UNREACHABLE)
                .count(),
        }
    };
    let failed = AtomicBool::new(false);
    par_for_with(batch_count(n), threads, BatchSweeper::new, |sweeper, b| {
        if failed.load(Ordering::Relaxed) {
            return;
        }
        let sources: Vec<NodeId> = batch_range(n, b).collect();
        let temporal = batch_reach_counts(tn, sweeper, &sources);
        for (lane, &s) in sources.iter().enumerate() {
            let expected = static_reach(s);
            debug_assert!(temporal[lane] <= expected, "journeys are paths");
            if temporal[lane] != expected {
                failed.store(true, Ordering::Relaxed);
                return;
            }
        }
    });
    !failed.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelAssignment;
    use crate::Time;
    use ephemeral_graph::generators;
    use ephemeral_graph::GraphBuilder;

    #[test]
    fn reach_on_increasing_path() {
        let g = generators::path(4);
        let labels = LabelAssignment::single(vec![1, 2, 3]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 3).unwrap();
        assert_eq!(temporal_reach(&tn, 0), vec![true; 4]);
        assert_eq!(temporal_reach_count(&tn, 0), 4);
        // From the far end the labels all decrease.
        assert_eq!(temporal_reach(&tn, 3), vec![false, false, true, true]);
    }

    #[test]
    fn treach_on_box_labelled_path() {
        // Two labels per edge covering both directions: every edge gets
        // {position+1, …} increasing forward and backward windows wide
        // enough — simplest certificate: all edges available at all times.
        let g = generators::path(5);
        let labels = LabelAssignment::from_vecs(vec![vec![1, 2, 3, 4]; 4]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 4).unwrap();
        assert!(treach_holds(&tn, 2));
        assert!(is_temporally_connected(&tn, 2));
    }

    #[test]
    fn treach_fails_on_one_label_path() {
        // A path with a single label per edge can never serve both
        // directions for n >= 3.
        let g = generators::path(3);
        let labels = LabelAssignment::single(vec![1, 2]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 2).unwrap();
        assert!(!treach_holds(&tn, 1));
        assert!(!is_temporally_connected(&tn, 1));
    }

    #[test]
    fn treach_respects_static_disconnection() {
        // Two disjoint labelled edges: static reachability is also split,
        // so T_reach holds (reachability is *preserved*).
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build().unwrap();
        let labels = LabelAssignment::single(vec![1, 1]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 1).unwrap();
        assert!(treach_holds(&tn, 1));
        assert!(!is_temporally_connected(&tn, 1));
    }

    #[test]
    fn clique_single_label_always_satisfies_treach() {
        // The paper's observation: K_n satisfies T_reach with any single
        // labelling, because the direct edge is itself a journey.
        let g = generators::clique(7, false);
        let m = g.num_edges();
        let labels: Vec<Time> = (0..m as Time).map(|i| 1 + (i % 7)).collect();
        let tn = TemporalNetwork::new(g, LabelAssignment::single(labels).unwrap(), 7).unwrap();
        assert!(treach_holds(&tn, 2));
        assert!(is_temporally_connected(&tn, 2));
    }

    #[test]
    fn batched_checks_match_scalar_loops_across_batch_boundaries() {
        use ephemeral_rng::{RandomSource, SeedSequence};
        for seed in 0..4u64 {
            let mut rng = SeedSequence::new(seed).rng(9);
            let n = 70; // two engine batches
            let g = generators::gnp(n, 0.08, false, &mut rng);
            let labels =
                LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, 32)]).unwrap();
            let tn = TemporalNetwork::new(g, labels, 32).unwrap();
            let scalar_connected =
                (0..n as NodeId).all(|s| foremost(&tn, s, 0).reached_count() == n);
            assert_eq!(
                is_temporally_connected(&tn, 2),
                scalar_connected,
                "seed {seed}"
            );
            let scalar_treach = (0..n as NodeId).all(|s| {
                let stat = bfs_distances(tn.graph(), s)
                    .iter()
                    .filter(|&&d| d != UNREACHABLE)
                    .count();
                foremost(&tn, s, 0).reached_count() == stat
            });
            assert_eq!(treach_holds(&tn, 2), scalar_treach, "seed {seed}");
        }
    }

    #[test]
    fn trivial_networks_are_connected() {
        let g = GraphBuilder::new_undirected(1).build().unwrap();
        let labels = LabelAssignment::from_vecs(vec![]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 1).unwrap();
        assert!(treach_holds(&tn, 1));
        assert!(is_temporally_connected(&tn, 1));
    }

    #[test]
    fn directed_star_out_edges_only() {
        // Directed star: centre -> leaves with label 1. Static reach from a
        // leaf is itself only; temporal matches => T_reach holds.
        let mut b = GraphBuilder::new_directed(4);
        for leaf in 1..4u32 {
            b.add_edge(0, leaf);
        }
        let g = b.build().unwrap();
        let labels = LabelAssignment::single(vec![1, 1, 1]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 1).unwrap();
        assert!(treach_holds(&tn, 1));
        assert!(!is_temporally_connected(&tn, 1));
    }
}
