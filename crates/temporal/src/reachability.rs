//! Temporal reachability and the paper's `T_reach` property.
//!
//! Definition 6: an assignment `L` **preserves the reachability** of `G`
//! when for all `u, v`: a `(u, v)`-path exists in `G` **iff** a
//! `(u, v)`-journey exists in `(G, L)`. Journeys are paths, so only the
//! forward implication can fail; the check therefore compares per-source
//! reach *counts* of static BFS and the temporal sweep. The whole-network
//! checks dispatch through the density-aware
//! [`EngineChoice`]: below the batch
//! crossover they run 64 sources per pass through the bit-parallel
//! [`engine`](crate::engine) with early exit at batch granularity; above
//! it they probe the first 64-lane column block (failing instances almost
//! always fail there, as cheaply as one batch) and only then sweep the
//! remaining blocks through the full-width engine the density selected —
//! [`wide`](crate::wide) on dense instances, event-driven
//! [`sparse`](crate::sparse) on sparse ones. The single-source helpers
//! stay on the scalar `foremost` oracle.

use crate::engine::{batch_count, batch_range, BatchSweeper};
use crate::foremost::foremost;
use crate::network::TemporalNetwork;
use crate::session::{block_all_reached, reach_counts};
use crate::sparse::{EngineChoice, FrontierRun};
use crate::wide::{probe_blocks, EngineKind, FrontierEngine, SweepScratch};
use crate::{Time, NEVER};
use ephemeral_graph::algo::{bfs_distances, connected_components, UNREACHABLE};
use ephemeral_graph::NodeId;
use ephemeral_parallel::{par_for_with, par_map_with};
use std::sync::atomic::{AtomicBool, Ordering};

/// Which vertices admit a journey from `source` (the source included).
#[must_use]
pub fn temporal_reach(tn: &TemporalNetwork, source: NodeId) -> Vec<bool> {
    foremost(tn, source, 0)
        .arrivals()
        .iter()
        .map(|&a| a != NEVER)
        .collect()
}

/// Number of vertices reachable by journeys from `source` (incl. itself).
#[must_use]
pub fn temporal_reach_count(tn: &TemporalNetwork, source: NodeId) -> usize {
    foremost(tn, source, 0).reached_count()
}

/// Is every ordered pair `(s, t)` connected by a journey? (The clique with
/// one label per edge trivially satisfies this; most sparse networks do
/// not.) Below the batch crossover: one engine sweep per batch of 64
/// sources, with early exit at batch granularity. Above it: a probe sweep
/// of the first 64-lane column block (a disconnected instance almost
/// always has an unreached pair among any 64+ sources), then the
/// remaining blocks sweep in parallel through the density-selected
/// full-width engine.
#[must_use]
pub fn is_temporally_connected(tn: &TemporalNetwork, threads: usize) -> bool {
    let n = tn.num_nodes();
    if n <= 1 {
        return true;
    }
    struct Connected<'a> {
        tn: &'a TemporalNetwork,
        threads: usize,
    }
    impl FrontierRun for Connected<'_> {
        type Out = bool;
        fn run<S: FrontierEngine>(self, shards: usize) -> bool {
            let (probe, rest) = probe_blocks(self.tn.num_nodes(), shards);
            frontier_connected::<S>(self.tn, self.threads, probe, &rest)
        }
    }
    if let Some(connected) = EngineChoice::dispatch(tn, threads, Connected { tn, threads }) {
        return connected;
    }
    let failed = AtomicBool::new(false);
    par_for_with(batch_count(n), threads, BatchSweeper::new, |sweeper, b| {
        if failed.load(Ordering::Relaxed) {
            return;
        }
        if !block_all_reached(tn, sweeper, batch_range(n, b)) {
            failed.store(true, Ordering::Relaxed);
        }
    });
    !failed.load(Ordering::Relaxed)
}

/// Probe-first whole-network connectivity over engine `S`. The 64-lane
/// probe block runs through the shared lane-pass core of
/// [`session`](crate::session) — the same pass that answers point
/// queries — and only the remaining blocks sweep full-width.
fn frontier_connected<S: FrontierEngine>(
    tn: &TemporalNetwork,
    threads: usize,
    probe: std::ops::Range<NodeId>,
    rest: &[std::ops::Range<NodeId>],
) -> bool {
    let n = tn.num_nodes();
    if !block_all_reached(tn, &mut BatchSweeper::new(), probe) {
        return false;
    }
    let failed = AtomicBool::new(false);
    par_map_with(rest, threads, S::default, |sweeper, _, block| {
        if failed.load(Ordering::Relaxed) {
            return;
        }
        let stats = sweeper.sweep(tn, block.clone(), 0, |_, _, _, _| {});
        if !stats.all_reached(n) {
            failed.store(true, Ordering::Relaxed);
        }
    });
    !failed.load(Ordering::Relaxed)
}

/// Per-lane temporal reach counts of one full-width block: each source
/// counts itself plus one per newly-reached vertex (integer accumulation,
/// so the commit order cannot affect the result).
fn wide_reach_counts<S: FrontierEngine>(
    tn: &TemporalNetwork,
    sweeper: &mut S,
    block: std::ops::Range<NodeId>,
) -> Vec<usize> {
    let mut counts = vec![1usize; block.len()];
    sweeper.sweep(tn, block, 0, |_, w, mut fresh, _: Time| {
        while fresh != 0 {
            counts[w * 64 + fresh.trailing_zeros() as usize] += 1;
            fresh &= fresh - 1;
        }
    });
    counts
}

/// The static-reachability oracle `T_reach` compares against: component
/// sizes from a single union–find pass when the graph is undirected
/// (`O(M)` total — component size = reach count), one BFS per queried
/// source for directed graphs.
fn static_reach_oracle(tn: &TemporalNetwork) -> impl Fn(NodeId) -> usize + Sync + '_ {
    let components = (!tn.graph().is_directed()).then(|| connected_components(tn.graph()));
    move |s: NodeId| match &components {
        Some(c) => c.sizes[c.labels[s as usize] as usize] as usize,
        None => bfs_distances(tn.graph(), s)
            .iter()
            .filter(|&&d| d != UNREACHABLE)
            .count(),
    }
}

/// Do the temporal reach counts of lanes `base..base + counts.len()`
/// match the static oracle?
fn lanes_match(
    static_reach: &(impl Fn(NodeId) -> usize + Sync),
    base: NodeId,
    counts: &[usize],
) -> bool {
    counts.iter().enumerate().all(|(lane, &count)| {
        let expected = static_reach(base + lane as NodeId);
        debug_assert!(count <= expected, "journeys are paths");
        count == expected
    })
}

/// Does the assignment preserve reachability (`T_reach`, Definition 6)?
///
/// Per source `s`, the set of temporally reachable vertices must equal the
/// set of statically reachable vertices; since journeys are paths, equality
/// of counts suffices (static counts from one union–find components pass
/// when undirected, per-source BFS when directed).
/// Temporal counts dispatch through the density-aware [`EngineChoice`]:
/// engine batches of 64 sources with early exit below the crossover;
/// above it, a 64-lane probe block first (a violating instance almost
/// always exposes a short-counted source among any 64), then the
/// remaining column blocks in parallel through the full-width engine the
/// density selected.
#[must_use]
pub fn treach_holds(tn: &TemporalNetwork, threads: usize) -> bool {
    let n = tn.num_nodes();
    if n <= 1 {
        return true;
    }
    let static_reach = static_reach_oracle(tn);
    struct Treach<'a, F> {
        tn: &'a TemporalNetwork,
        threads: usize,
        static_reach: &'a F,
    }
    impl<F: Fn(NodeId) -> usize + Sync> FrontierRun for Treach<'_, F> {
        type Out = bool;
        fn run<S: FrontierEngine>(self, shards: usize) -> bool {
            let (probe, rest) = probe_blocks(self.tn.num_nodes(), shards);
            frontier_treach::<S>(self.tn, self.threads, self.static_reach, probe, &rest)
        }
    }
    let run = Treach {
        tn,
        threads,
        static_reach: &static_reach,
    };
    if let Some(holds) = EngineChoice::dispatch(tn, threads, run) {
        return holds;
    }
    let failed = AtomicBool::new(false);
    par_for_with(batch_count(n), threads, BatchSweeper::new, |sweeper, b| {
        if failed.load(Ordering::Relaxed) {
            return;
        }
        let batch = batch_range(n, b);
        let (base, width) = (batch.start, batch.len());
        let temporal = reach_counts(tn, sweeper, batch);
        if !lanes_match(&static_reach, base, &temporal[..width]) {
            failed.store(true, Ordering::Relaxed);
        }
    });
    !failed.load(Ordering::Relaxed)
}

/// Probe-first whole-network `T_reach` over engine `S`. As with
/// connectivity, the probe block runs through the shared lane-pass core
/// of [`session`](crate::session); only the remaining blocks sweep
/// full-width.
fn frontier_treach<S: FrontierEngine>(
    tn: &TemporalNetwork,
    threads: usize,
    static_reach: &(impl Fn(NodeId) -> usize + Sync),
    probe: std::ops::Range<NodeId>,
    rest: &[std::ops::Range<NodeId>],
) -> bool {
    let (base, width) = (probe.start, probe.len());
    let counts = reach_counts(tn, &mut BatchSweeper::new(), probe);
    if !lanes_match(static_reach, base, &counts[..width]) {
        return false;
    }
    let failed = AtomicBool::new(false);
    par_map_with(rest, threads, S::default, |sweeper, _, block| {
        if failed.load(Ordering::Relaxed) {
            return;
        }
        let counts = wide_reach_counts(tn, sweeper, block.clone());
        if !lanes_match(static_reach, block.start, &counts) {
            failed.store(true, Ordering::Relaxed);
        }
    });
    !failed.load(Ordering::Relaxed)
}

/// Sequential [`treach_holds`] reusing a caller-owned [`SweepScratch`] —
/// the per-trial path of the Monte Carlo estimators, which would
/// otherwise rebuild a full-width engine's `n × ⌈n/64⌉` frontier matrices
/// on every trial above the crossover (the static-reach side still runs
/// its components pass per call; it is the heavy sweep buffers that are
/// reused). Same dispatch and early exits as `treach_holds(tn, 1)`, same
/// answer.
#[must_use]
pub fn treach_holds_scratch(tn: &TemporalNetwork, scratch: &mut SweepScratch) -> bool {
    treach_holds_scratch_traced(tn, scratch).0
}

/// [`treach_holds_scratch`] that also reports the engine that **actually
/// answered** — the attribution `experiments sweep` rows carry. Above the
/// batch crossover the check probes the first 64-lane column block
/// before committing to a full-width sweep; when that probe alone decides
/// the answer (the overwhelmingly common case on failing instances), the
/// work done was one single-word sweep — exactly a batched pass — and the
/// attribution is [`EngineKind::Batch`], not the engine the density
/// dispatch *would* have used for the remaining blocks. Only runs that
/// sweep a full-width block report [`EngineKind::Wide`] /
/// [`EngineKind::Sparse`].
#[must_use]
pub fn treach_holds_scratch_traced(
    tn: &TemporalNetwork,
    scratch: &mut SweepScratch,
) -> (bool, EngineKind) {
    let n = tn.num_nodes();
    if n <= 1 {
        return (true, EngineKind::Batch);
    }
    let static_reach = static_reach_oracle(tn);
    struct TreachScratch<'a, F> {
        tn: &'a TemporalNetwork,
        scratch: &'a mut SweepScratch,
        static_reach: &'a F,
    }
    impl<F: Fn(NodeId) -> usize + Sync> FrontierRun for TreachScratch<'_, F> {
        type Out = (bool, EngineKind);
        fn run<S: FrontierEngine>(self, shards: usize) -> Self::Out {
            let (probe, rest) = probe_blocks(self.tn.num_nodes(), shards);
            frontier_treach_scratch::<S>(self.tn, self.scratch, self.static_reach, probe, rest)
        }
    }
    let run = TreachScratch {
        tn,
        scratch: &mut *scratch,
        static_reach: &static_reach,
    };
    EngineChoice::dispatch(tn, 1, run).unwrap_or_else(|| {
        for b in 0..batch_count(n) {
            let batch = batch_range(n, b);
            let (base, width) = (batch.start, batch.len());
            let temporal = reach_counts(tn, &mut scratch.batch, batch);
            if !lanes_match(&static_reach, base, &temporal[..width]) {
                return (false, EngineKind::Batch);
            }
        }
        (true, EngineKind::Batch)
    })
}

/// Sequential probe-first `T_reach` over engine `S`, reporting whether the
/// 64-lane probe alone answered (attributed as a batched pass) or a
/// full-width block had to sweep. The probe runs through the shared
/// lane-pass core of [`session`](crate::session) on the scratch bundle's
/// batched engine — the probe *is* a batched pass, so the attribution is
/// literal — and only the remaining blocks fetch the full-width engine.
fn frontier_treach_scratch<S: FrontierEngine>(
    tn: &TemporalNetwork,
    scratch: &mut SweepScratch,
    static_reach: &(impl Fn(NodeId) -> usize + Sync),
    probe: std::ops::Range<NodeId>,
    rest: Vec<std::ops::Range<NodeId>>,
) -> (bool, EngineKind) {
    let (base, width) = (probe.start, probe.len());
    let counts = reach_counts(tn, &mut scratch.batch, probe);
    if !lanes_match(static_reach, base, &counts[..width]) {
        return (false, EngineKind::Batch);
    }
    let sweeper = S::from_scratch(scratch);
    for block in rest {
        let base = block.start;
        let counts = wide_reach_counts(tn, sweeper, block);
        if !lanes_match(static_reach, base, &counts) {
            return (false, S::kind());
        }
    }
    (true, S::kind())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelAssignment;
    use crate::Time;
    use ephemeral_graph::generators;
    use ephemeral_graph::GraphBuilder;

    #[test]
    fn reach_on_increasing_path() {
        let g = generators::path(4);
        let labels = LabelAssignment::single(vec![1, 2, 3]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 3).unwrap();
        assert_eq!(temporal_reach(&tn, 0), vec![true; 4]);
        assert_eq!(temporal_reach_count(&tn, 0), 4);
        // From the far end the labels all decrease.
        assert_eq!(temporal_reach(&tn, 3), vec![false, false, true, true]);
    }

    #[test]
    fn treach_on_box_labelled_path() {
        // Two labels per edge covering both directions: every edge gets
        // {position+1, …} increasing forward and backward windows wide
        // enough — simplest certificate: all edges available at all times.
        let g = generators::path(5);
        let labels = LabelAssignment::from_vecs(vec![vec![1, 2, 3, 4]; 4]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 4).unwrap();
        assert!(treach_holds(&tn, 2));
        assert!(is_temporally_connected(&tn, 2));
    }

    #[test]
    fn treach_fails_on_one_label_path() {
        // A path with a single label per edge can never serve both
        // directions for n >= 3.
        let g = generators::path(3);
        let labels = LabelAssignment::single(vec![1, 2]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 2).unwrap();
        assert!(!treach_holds(&tn, 1));
        assert!(!is_temporally_connected(&tn, 1));
    }

    #[test]
    fn treach_respects_static_disconnection() {
        // Two disjoint labelled edges: static reachability is also split,
        // so T_reach holds (reachability is *preserved*).
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build().unwrap();
        let labels = LabelAssignment::single(vec![1, 1]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 1).unwrap();
        assert!(treach_holds(&tn, 1));
        assert!(!is_temporally_connected(&tn, 1));
    }

    #[test]
    fn clique_single_label_always_satisfies_treach() {
        // The paper's observation: K_n satisfies T_reach with any single
        // labelling, because the direct edge is itself a journey.
        let g = generators::clique(7, false);
        let m = g.num_edges();
        let labels: Vec<Time> = (0..m as Time).map(|i| 1 + (i % 7)).collect();
        let tn = TemporalNetwork::new(g, LabelAssignment::single(labels).unwrap(), 7).unwrap();
        assert!(treach_holds(&tn, 2));
        assert!(is_temporally_connected(&tn, 2));
    }

    #[test]
    fn batched_checks_match_scalar_loops_across_batch_boundaries() {
        use ephemeral_rng::{RandomSource, SeedSequence};
        for seed in 0..4u64 {
            let mut rng = SeedSequence::new(seed).rng(9);
            let n = 70; // two engine batches
            let g = generators::gnp(n, 0.08, false, &mut rng);
            let labels =
                LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, 32)]).unwrap();
            let tn = TemporalNetwork::new(g, labels, 32).unwrap();
            let scalar_connected =
                (0..n as NodeId).all(|s| foremost(&tn, s, 0).reached_count() == n);
            assert_eq!(
                is_temporally_connected(&tn, 2),
                scalar_connected,
                "seed {seed}"
            );
            let scalar_treach = (0..n as NodeId).all(|s| {
                let stat = bfs_distances(tn.graph(), s)
                    .iter()
                    .filter(|&&d| d != UNREACHABLE)
                    .count();
                foremost(&tn, s, 0).reached_count() == stat
            });
            assert_eq!(treach_holds(&tn, 2), scalar_treach, "seed {seed}");
        }
    }

    #[test]
    fn wide_checks_match_scalar_loops_above_the_crossover() {
        use ephemeral_rng::{RandomSource, SeedSequence};
        let n = crate::wide::WIDE_CROSSOVER + 30;
        for (seed, r) in [(1u64, 1usize), (2, 24)] {
            // r = 1 essentially never preserves reachability; r = 24 over a
            // dense-ish gnp usually does — both branches of the probe.
            let mut rng = SeedSequence::new(seed).rng(5);
            let g = generators::gnp(n, 0.08, false, &mut rng);
            let lifetime = n as u32;
            let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
                (0..r).map(|_| rng.range_u32(1, lifetime)).collect()
            })
            .unwrap();
            let tn = TemporalNetwork::new(g, labels, lifetime).unwrap();
            let scalar_connected =
                (0..n as NodeId).all(|s| foremost(&tn, s, 0).reached_count() == n);
            let scalar_treach = (0..n as NodeId).all(|s| {
                let stat = bfs_distances(tn.graph(), s)
                    .iter()
                    .filter(|&&d| d != UNREACHABLE)
                    .count();
                foremost(&tn, s, 0).reached_count() == stat
            });
            for threads in [1, 3] {
                assert_eq!(
                    is_temporally_connected(&tn, threads),
                    scalar_connected,
                    "seed {seed} threads {threads}"
                );
                assert_eq!(
                    treach_holds(&tn, threads),
                    scalar_treach,
                    "seed {seed} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn scratch_treach_matches_the_parallel_check_in_both_regimes() {
        use crate::wide::{SweepScratch, WIDE_CROSSOVER};
        use ephemeral_rng::{RandomSource, SeedSequence};
        let mut scratch = SweepScratch::new();
        for (seed, n, r) in [
            (1u64, 48usize, 1usize),     // batch regime, usually failing
            (2, 48, 32),                 // batch regime, usually holding
            (3, WIDE_CROSSOVER + 5, 1),  // wide regime, failing
            (4, WIDE_CROSSOVER + 5, 32), // wide regime, holding
        ] {
            let mut rng = SeedSequence::new(seed).rng(2);
            let g = generators::gnp(n, 0.1, false, &mut rng);
            let lifetime = n as u32;
            let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
                (0..r).map(|_| rng.range_u32(1, lifetime)).collect()
            })
            .unwrap();
            let tn = TemporalNetwork::new(g, labels, lifetime).unwrap();
            assert_eq!(
                treach_holds_scratch(&tn, &mut scratch),
                treach_holds(&tn, 2),
                "seed {seed} n {n} r {r}"
            );
        }
    }

    #[test]
    fn trivial_networks_are_connected() {
        let g = GraphBuilder::new_undirected(1).build().unwrap();
        let labels = LabelAssignment::from_vecs(vec![]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 1).unwrap();
        assert!(treach_holds(&tn, 1));
        assert!(is_temporally_connected(&tn, 1));
    }

    #[test]
    fn directed_star_out_edges_only() {
        // Directed star: centre -> leaves with label 1. Static reach from a
        // leaf is itself only; temporal matches => T_reach holds.
        let mut b = GraphBuilder::new_directed(4);
        for leaf in 1..4u32 {
            b.add_edge(0, leaf);
        }
        let g = b.build().unwrap();
        let labels = LabelAssignment::single(vec![1, 1, 1]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 1).unwrap();
        assert!(treach_holds(&tn, 1));
        assert!(!is_temporally_connected(&tn, 1));
    }
}
