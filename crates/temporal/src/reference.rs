//! Reference (unoptimised) implementations used for differential testing
//! and ablation benchmarking of the design choices called out in DESIGN.md.
//!
//! The production foremost sweep relies on the bucket index built once per
//! network (`O(M + a)` per source, zero sorting). The reference below
//! re-sorts the time-edges on every call (`O(M log M)` per source) — the
//! ablation bench `a01_ablation` quantifies what the index buys, and the
//! tests in this module pin both implementations to identical outputs.

use crate::foremost::{foremost, ForemostRun};
use crate::network::TemporalNetwork;
use crate::{Time, NEVER};
use ephemeral_graph::NodeId;

/// Sort-based single-source foremost arrival times (no journey
/// reconstruction). Semantically identical to
/// [`crate::foremost::foremost`]'s arrival array.
///
/// # Panics
/// If `source` is out of range.
#[must_use]
pub fn foremost_arrivals_by_sorting(
    tn: &TemporalNetwork,
    source: NodeId,
    start_time: Time,
) -> Vec<Time> {
    let n = tn.num_nodes();
    assert!((source as usize) < n, "source {source} out of range");
    let directed = tn.graph().is_directed();
    // Gather and sort every (label, edge) pair.
    let mut time_edges: Vec<(Time, u32)> = tn.assignment().iter().map(|(e, l)| (l, e)).collect();
    time_edges.sort_unstable();
    let mut arrival = vec![NEVER; n];
    arrival[source as usize] = start_time;
    for (t, e) in time_edges {
        if t <= start_time {
            continue;
        }
        let (u, v) = tn.graph().endpoints(e);
        if arrival[u as usize] < t && arrival[v as usize] > t {
            arrival[v as usize] = t;
        }
        if !directed && arrival[v as usize] < t && arrival[u as usize] > t {
            arrival[u as usize] = t;
        }
    }
    arrival
}

/// Convenience wrapper running both implementations and asserting equality
/// (debug builds only); returns the production result. Useful as a drop-in
/// while debugging new label models.
#[must_use]
pub fn foremost_checked(tn: &TemporalNetwork, source: NodeId, start_time: Time) -> ForemostRun {
    let run = foremost(tn, source, start_time);
    debug_assert_eq!(
        run.arrivals(),
        foremost_arrivals_by_sorting(tn, source, start_time).as_slice(),
        "bucketed and sorted sweeps diverged"
    );
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelAssignment;
    use ephemeral_graph::generators;
    use ephemeral_rng::{RandomSource, SeedSequence};

    #[test]
    fn implementations_agree_on_random_instances() {
        let seq = SeedSequence::new(404);
        for trial in 0..50u64 {
            let mut rng = seq.rng(trial);
            let n = 4 + rng.index(12);
            let g = generators::gnp(n, 0.4, trial % 2 == 0, &mut rng);
            let lifetime = 10;
            let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
                let k = 1 + rng.index(3);
                (0..k).map(|_| rng.range_u32(1, lifetime)).collect()
            })
            .unwrap();
            let tn = TemporalNetwork::new(g, labels, lifetime).unwrap();
            for s in 0..tn.num_nodes() as u32 {
                assert_eq!(
                    foremost(&tn, s, 0).arrivals(),
                    foremost_arrivals_by_sorting(&tn, s, 0).as_slice(),
                    "trial {trial}, source {s}"
                );
            }
        }
    }

    #[test]
    fn agree_with_nonzero_start_times() {
        let g = generators::cycle(8);
        let labels = LabelAssignment::from_fn(8, |e| vec![e + 1, e + 5]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 13).unwrap();
        for start in [0u32, 1, 3, 7, 13] {
            assert_eq!(
                foremost(&tn, 0, start).arrivals(),
                foremost_arrivals_by_sorting(&tn, 0, start).as_slice(),
                "start {start}"
            );
        }
    }

    #[test]
    fn checked_wrapper_returns_production_result() {
        let g = generators::path(5);
        let labels = LabelAssignment::single(vec![1, 2, 3, 4]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 4).unwrap();
        let run = foremost_checked(&tn, 0, 0);
        assert_eq!(run.arrivals(), &[0, 1, 2, 3, 4]);
    }
}
