//! Latest-departure journeys: the time-reversed dual of
//! [`crate::foremost`].
//!
//! `latest_departure(tn, target, deadline)` computes, for every vertex `u`,
//! the **largest label** a journey from `u` to `target` can start with while
//! still arriving by `deadline`. This is the "reverse expansion process out
//! of `t`" of the paper's §3.3 in algorithmic form: the sweep walks labels
//! in *decreasing* order and relaxes arcs backwards.

use crate::journey::{Journey, TimeEdge};
use crate::network::TemporalNetwork;
use crate::Time;
use ephemeral_graph::{NodeId, INVALID_NODE};

/// Result of a latest-departure sweep towards a target.
#[derive(Debug, Clone)]
pub struct ReverseRun {
    target: NodeId,
    deadline: Time,
    /// `0` means "no journey from here by the deadline"; the target itself
    /// holds `deadline + 1` (saturating), meaning "already there".
    latest: Vec<Time>,
    child: Vec<NodeId>,
}

impl ReverseRun {
    /// The target vertex.
    #[must_use]
    pub const fn target(&self) -> NodeId {
        self.target
    }

    /// The deadline used.
    #[must_use]
    pub const fn deadline(&self) -> Time {
        self.deadline
    }

    /// Latest departure label from `u`, or `None` when no journey reaches
    /// the target by the deadline (or `u` is the target itself).
    #[must_use]
    pub fn departure(&self, u: NodeId) -> Option<Time> {
        if u == self.target {
            return None;
        }
        let t = self.latest[u as usize];
        (t != 0).then_some(t)
    }

    /// Can `u` reach the target by the deadline? (The target can, trivially.)
    #[must_use]
    pub fn reaches(&self, u: NodeId) -> bool {
        u == self.target || self.latest[u as usize] != 0
    }

    /// Number of vertices that can reach the target (including itself).
    #[must_use]
    pub fn reach_count(&self) -> usize {
        self.latest
            .iter()
            .enumerate()
            .filter(|&(u, &t)| t != 0 || u == self.target as usize)
            .count()
    }

    /// Reconstruct a latest-departure journey from `u` to the target.
    #[must_use]
    pub fn journey_from(&self, u: NodeId) -> Option<Journey> {
        if u == self.target || self.latest[u as usize] == 0 {
            return None;
        }
        let mut steps = Vec::new();
        let mut cur = u;
        while cur != self.target {
            let next = self.child[cur as usize];
            debug_assert_ne!(next, INVALID_NODE);
            steps.push(TimeEdge {
                from: cur,
                to: next,
                time: self.latest[cur as usize],
            });
            cur = next;
        }
        Some(Journey::new(steps).expect("reverse sweep invariants produce valid journeys"))
    }
}

/// Latest-departure sweep towards `target` with arrival deadline `deadline`
/// (labels above the deadline are unusable on the final edge, and the whole
/// journey must be strictly increasing as usual).
///
/// ```
/// use ephemeral_graph::generators;
/// use ephemeral_temporal::{reverse::latest_departure, LabelAssignment, TemporalNetwork};
///
/// // 0—1 @{2,4}, 1—2 @5: one can wait at 0 until time 4 and still make it.
/// let tn = TemporalNetwork::new(
///     generators::path(3),
///     LabelAssignment::from_vecs(vec![vec![2, 4], vec![5]]).unwrap(),
///     5,
/// ).unwrap();
/// let run = latest_departure(&tn, 2, 5);
/// assert_eq!(run.departure(0), Some(4));
/// ```
///
/// # Panics
/// If `target` is out of range.
#[must_use]
pub fn latest_departure(tn: &TemporalNetwork, target: NodeId, deadline: Time) -> ReverseRun {
    let n = tn.num_nodes();
    assert!((target as usize) < n, "target {target} out of range");
    let directed = tn.graph().is_directed();
    let mut latest = vec![0 as Time; n];
    let mut child = vec![INVALID_NODE; n];
    // The target can "depart" at any time up to deadline+1 exclusive — the
    // sentinel lets the uniform relaxation `latest[head] >= t + 1` encode
    // "the final edge label may be at most the deadline".
    latest[target as usize] = deadline.saturating_add(1);
    let mut t = deadline.min(tn.lifetime());
    while t >= 1 {
        for &e in tn.edges_at(t) {
            let (u, v) = tn.graph().endpoints(e);
            // Arc u -> v used at t: requires continuing from v strictly
            // after t.
            if latest[v as usize] > t && latest[u as usize] < t && u != target {
                latest[u as usize] = t;
                child[u as usize] = v;
            }
            if !directed && latest[u as usize] > t && latest[v as usize] < t && v != target {
                latest[v as usize] = t;
                child[v as usize] = u;
            }
        }
        t -= 1;
    }
    ReverseRun {
        target,
        deadline,
        latest,
        child,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foremost::foremost;
    use crate::LabelAssignment;
    use ephemeral_graph::generators;
    use ephemeral_graph::GraphBuilder;

    fn path_network(labels: Vec<Vec<Time>>, lifetime: Time) -> TemporalNetwork {
        let g = generators::path(labels.len() + 1);
        TemporalNetwork::new(g, LabelAssignment::from_vecs(labels).unwrap(), lifetime).unwrap()
    }

    #[test]
    fn latest_departure_on_increasing_path() {
        let tn = path_network(vec![vec![1], vec![2], vec![3]], 3);
        let run = latest_departure(&tn, 3, 3);
        assert_eq!(run.departure(0), Some(1));
        assert_eq!(run.departure(1), Some(2));
        assert_eq!(run.departure(2), Some(3));
        assert_eq!(run.departure(3), None); // target itself
        assert!(run.reaches(3));
        assert_eq!(run.reach_count(), 4);
    }

    #[test]
    fn deadline_cuts_off_late_edges() {
        let tn = path_network(vec![vec![1], vec![2], vec![3]], 3);
        let run = latest_departure(&tn, 3, 2);
        // The last hop needs label 3 > deadline.
        assert!(!run.reaches(0));
        assert!(!run.reaches(2));
        assert_eq!(run.reach_count(), 1);
    }

    #[test]
    fn multi_label_picks_latest_viable() {
        // 0—1 at {1, 2, 9}, 1—2 at {5}: latest departure from 0 is 2.
        let tn = path_network(vec![vec![1, 2, 9], vec![5]], 9);
        let run = latest_departure(&tn, 2, 9);
        assert_eq!(run.departure(0), Some(2));
        assert_eq!(run.departure(1), Some(5));
    }

    #[test]
    fn journeys_are_valid_and_depart_latest() {
        let tn = path_network(vec![vec![1, 2, 9], vec![5], vec![6, 7]], 9);
        let run = latest_departure(&tn, 3, 9);
        let j = run.journey_from(0).unwrap();
        assert_eq!(j.source(), 0);
        assert_eq!(j.target(), 3);
        assert_eq!(j.departure(), run.departure(0).unwrap());
        assert!(j.arrival() <= 9);
        assert!(j.is_realizable_in(&tn));
        assert!(run.journey_from(3).is_none());
    }

    #[test]
    fn directed_reverse_respects_orientation() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let tn = TemporalNetwork::new(g, LabelAssignment::single(vec![1, 2]).unwrap(), 2).unwrap();
        let run = latest_departure(&tn, 2, 2);
        assert_eq!(run.departure(0), Some(1));
        assert_eq!(run.departure(1), Some(2));
        // Target of the reversed question: node 0 has no incoming journey.
        let run0 = latest_departure(&tn, 0, 2);
        assert_eq!(run0.reach_count(), 1);
    }

    #[test]
    fn agrees_with_foremost_on_reachability() {
        // On an undirected network, u reaches t by the lifetime iff the
        // reverse run from t marks u.
        let g = generators::cycle(7);
        let m = g.num_edges();
        let labels: Vec<Time> = (0..m as Time).map(|i| 1 + (i * 3) % 9).collect();
        let tn = TemporalNetwork::new(g, LabelAssignment::single(labels).unwrap(), 9).unwrap();
        let target = 4u32;
        let rev = latest_departure(&tn, target, 9);
        for u in 0..7u32 {
            let fwd = foremost(&tn, u, 0);
            assert_eq!(
                fwd.reached(target),
                rev.reaches(u),
                "u={u}: forward and reverse disagree"
            );
        }
    }

    #[test]
    fn unreachable_vertex_has_no_departure() {
        let tn = path_network(vec![vec![2], vec![1]], 2);
        // 0 -> 2 needs increasing labels 2 then 1: impossible.
        let run = latest_departure(&tn, 2, 2);
        assert_eq!(run.departure(0), None);
        assert!(run.journey_from(0).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let tn = path_network(vec![vec![1]], 1);
        let _ = latest_departure(&tn, 5, 1);
    }
}
