//! Point-query sessions: the lane-allocating query layer over the sweep
//! engines.
//!
//! Every engine in this crate answers all-pairs questions; the paper's
//! objects — foremost arrival `δ(u, v)`, "can `u` reach `v` by `t`",
//! one source's distance row — are *point* questions. A
//! [`QuerySession`] pins one instance arena-resident (the network's
//! label-bucketed time-edge index, the engines' aligned slabs, and
//! optionally a recorded [`DeltaCursor`](crate::delta::DeltaCursor))
//! and answers batches of up to
//! [`MAX_LANES`] [`PointQuery`]s by packing them as lanes of a single
//! [`BatchSweeper::sweep_lanes`] pass with per-lane early exit — a lane
//! retires the moment its target bit commits, the pass retires when all
//! lanes are done. Row-shaped queries above the batch crossover fall
//! back to whichever full-width engine the density-aware
//! [`EngineChoice`] selects, exactly like the all-pairs entry points.
//!
//! When the session carries a live cursor (after
//! [`QuerySession::record_cursor`] or a [`QuerySession::move_label`]),
//! target queries skip the sweep entirely: the cursor's per-vertex
//! commit logs are the memoized sweep, and
//! [`DeltaCursor::arrival`](crate::delta::DeltaCursor::arrival) reads
//! the foremost arrival straight out of
//! them — bit-identical to a cold sweep after any move sequence.
//!
//! The lane-pass core is shared, not copied: the probe blocks and
//! batched fallbacks of [`reachability`](crate::reachability) and
//! [`closure`](crate::closure) route through [`reach_counts`],
//! [`block_all_reached`] and [`closure_rows_into`] below, so point and
//! all-pairs code answer from one semantics contract
//! (`tests/session_proptests.rs` pins both against the scalar
//! [`foremost`](crate::foremost::foremost) oracle).

use crate::delta::DeltaApply;
use crate::engine::{BatchSweeper, Lane, LaneStats, MAX_LANES};
use crate::network::TemporalNetwork;
use crate::reachability::treach_holds_scratch;
use crate::sparse::{EngineChoice, FrontierRun};
use crate::wide::{EngineKind, FrontierEngine, SweepScratch, WideStats};
use crate::{LabelAssignment, TemporalError, Time, NEVER};
use ephemeral_graph::algo::{connected_components, Components};
use ephemeral_graph::{EdgeId, NodeId};
use ephemeral_parallel::faults::CancelToken;
use std::ops::Range;

/// One point question against a resident instance (start time 0, the
/// paper's convention for `δ(u, v)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointQuery {
    /// Does a journey `u → v` arrive by time `by` (inclusive)?
    Reaches {
        /// Source vertex.
        u: NodeId,
        /// Target vertex.
        v: NodeId,
        /// Inclusive arrival deadline.
        by: Time,
    },
    /// The foremost arrival `δ(u, v)`.
    Foremost {
        /// Source vertex.
        u: NodeId,
        /// Target vertex.
        v: NodeId,
    },
    /// The whole distance row `δ(u, ·)` up to `horizon`.
    DistanceRow {
        /// Source vertex.
        u: NodeId,
        /// Inclusive label ceiling ([`NEVER`] = the full lifetime).
        horizon: Time,
    },
}

/// The answer to one [`PointQuery`], variant-for-variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointAnswer {
    /// Answer to [`PointQuery::Reaches`].
    Reaches {
        /// Did a journey arrive by the deadline?
        reached: bool,
        /// Its foremost arrival when it did.
        arrival: Option<Time>,
    },
    /// Answer to [`PointQuery::Foremost`]: `None` when unreachable.
    Foremost(Option<Time>),
    /// Answer to [`PointQuery::DistanceRow`]: `row[v] = δ(u, v)` with
    /// [`NEVER`] marking pairs with no journey within the horizon.
    DistanceRow(Vec<Time>),
}

/// Running counters of everything a session did (monotone; never reset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Query batches answered.
    pub batches: u64,
    /// Target-shaped queries answered (reaches + foremost).
    pub point_queries: u64,
    /// Row-shaped queries answered.
    pub row_queries: u64,
    /// Target queries answered from the live cursor log, no sweep.
    pub cursor_hits: u64,
    /// Lane passes run ([`BatchSweeper::sweep_lanes`]).
    pub lane_passes: u64,
    /// Row queries served by a dispatched full-width engine.
    pub dispatched_rows: u64,
    /// Lanes that retired before their horizon across all passes.
    pub retired_early: u64,
    /// Occupied buckets scanned across all lane passes.
    pub buckets_visited: u64,
    /// Target queries answered "unreachable" straight from the static
    /// component index — no lane, no sweep.
    pub component_skips: u64,
}

/// A resident instance plus every pooled buffer needed to answer point
/// queries against it — the engine-layer session the `ephemeral-serve`
/// cache holds one of per instance.
///
/// ```
/// use ephemeral_graph::generators;
/// use ephemeral_temporal::session::{PointAnswer, PointQuery, QuerySession};
/// use ephemeral_temporal::{LabelAssignment, TemporalNetwork};
///
/// // 0—1 @1, 1—2 @2: a journey 0 → 2 arrives at 2.
/// let tn = TemporalNetwork::new(
///     generators::path(3),
///     LabelAssignment::from_vecs(vec![vec![1], vec![2]]).unwrap(),
///     2,
/// )
/// .unwrap();
/// let mut session = QuerySession::new(tn);
/// let answers = session.answer_batch(&[
///     PointQuery::Foremost { u: 0, v: 2 },
///     PointQuery::Reaches { u: 2, v: 0, by: 2 },
/// ]);
/// assert_eq!(answers[0], PointAnswer::Foremost(Some(2)));
/// assert_eq!(
///     answers[1],
///     PointAnswer::Reaches { reached: false, arrival: None }
/// );
/// ```
#[derive(Debug)]
pub struct QuerySession {
    tn: TemporalNetwork,
    scratch: SweepScratch,
    /// Is `scratch.delta` a recording of `tn`'s *current* labels?
    cursor_live: bool,
    /// Static (weak) components of the resident graph, materialised by
    /// the first lane-packing batch. Label moves and assignment swaps
    /// never touch the graph, so one union–find pass serves the whole
    /// session: cross-component targets answer "unreachable" with no
    /// lane, and same-component lanes retire once their frontier
    /// saturates the component.
    components: Option<Components>,
    lanes: Vec<Lane>,
    lane_arrivals: Vec<Time>,
    lane_slots: Vec<usize>,
    stats: SessionStats,
}

impl QuerySession {
    /// Pin `tn` resident with fresh scratch; the first batch sizes the
    /// engine buffers, subsequent batches reuse them.
    #[must_use]
    pub fn new(tn: TemporalNetwork) -> Self {
        Self::from_parts(tn, SweepScratch::new())
    }

    /// Pin `tn` resident reusing an existing scratch bundle (a pooled
    /// session slot). The cursor is treated as stale.
    #[must_use]
    pub fn from_parts(tn: TemporalNetwork, scratch: SweepScratch) -> Self {
        Self {
            tn,
            scratch,
            cursor_live: false,
            components: None,
            lanes: Vec::new(),
            lane_arrivals: Vec::new(),
            lane_slots: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    /// The resident network.
    #[must_use]
    pub fn network(&self) -> &TemporalNetwork {
        &self.tn
    }

    /// Vertices of the resident network.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.tn.num_nodes()
    }

    /// The session's monotone counters.
    #[must_use]
    pub const fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Is the maintained cursor currently answering target queries?
    #[must_use]
    pub const fn cursor_live(&self) -> bool {
        self.cursor_live
    }

    /// Deterministic estimate of the session's resident footprint in
    /// bytes — the instance-cache accounting unit of `ephemeral-serve`.
    /// A size model (network index + engine slabs + cursor log), not an
    /// allocator measurement: identical instances produce identical
    /// estimates on every platform, which keeps cache evictions — and
    /// therefore served answers — byte-stable across runs.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        let n = self.tn.num_nodes();
        let width = n.div_ceil(64);
        // Time-edge index: one u32 per (label, edge-slot) plus bucket
        // offsets over the lifetime; labels themselves once more.
        let network = 12 * self.tn.num_time_edges()
            + 8 * self.tn.lifetime() as usize
            + 16 * self.tn.graph().num_edges();
        // Batched engine: before/delta/tmask words plus the touched list.
        let engines = 28 * n;
        // Cursor: closure rows plus 16 bytes per logged commit entry.
        let cursor = if self.cursor_live {
            8 * n * width + 16 * self.scratch.delta.stats().reached_bits
        } else {
            0
        };
        network + engines + cursor
    }

    /// Arm (or clear) one cooperative cancellation token across every
    /// engine in the session — the serve layer installs its per-batch
    /// deadline here.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.scratch.set_cancel_token(token);
    }

    /// Answer one query (a batch of one).
    pub fn answer(&mut self, query: &PointQuery) -> PointAnswer {
        let mut out = Vec::with_capacity(1);
        self.answer_batch_into(std::slice::from_ref(query), &mut out);
        out.pop().expect("one answer per query")
    }

    /// [`QuerySession::answer_batch_into`] into a fresh vector.
    #[must_use]
    pub fn answer_batch(&mut self, queries: &[PointQuery]) -> Vec<PointAnswer> {
        let mut out = Vec::with_capacity(queries.len());
        self.answer_batch_into(queries, &mut out);
        out
    }

    /// Answer up to [`MAX_LANES`] queries in one pass, `out[i]`
    /// answering `queries[i]`.
    ///
    /// Target queries hit the live cursor log when there is one;
    /// everything else packs as lanes of a single
    /// [`BatchSweeper::sweep_lanes`] walk over the occupied buckets,
    /// except row queries above the batch crossover, which dispatch
    /// through [`EngineChoice`] to the full-width engine the density
    /// selects — the same dispatch the all-pairs entry points use, so
    /// every path answers from one semantics contract.
    ///
    /// # Panics
    /// If `queries.len() > MAX_LANES` or any vertex is out of range.
    pub fn answer_batch_into(&mut self, queries: &[PointQuery], out: &mut Vec<PointAnswer>) {
        assert!(
            queries.len() <= MAX_LANES,
            "at most {MAX_LANES} queries per batch"
        );
        out.clear();
        self.stats.batches += 1;
        let batch_regime = EngineChoice::pick_for(&self.tn) == EngineKind::Batch;
        let mut tmp: [Option<PointAnswer>; MAX_LANES] = std::array::from_fn(|_| None);
        // (query slot, source, horizon) of rows the full-width engines
        // will serve after the lane pass.
        let mut dispatched: Vec<(usize, NodeId, Time)> = Vec::new();
        // Row buffers collected during the lane pass, indexed per lane.
        let mut row_of_lane: [usize; MAX_LANES] = [usize::MAX; MAX_LANES];
        let mut rows: Vec<Vec<Time>> = Vec::new();
        self.lanes.clear();
        self.lane_slots.clear();
        let n = self.tn.num_nodes();
        // Materialise the static component index on first use: union–find
        // over the (immutable) graph, one pass per session lifetime. A
        // cross-component target can never be reached — answer it here —
        // and a same-component lane can never commit more bits than its
        // component holds, so it retires at component saturation instead
        // of scanning to its horizon.
        let comps = self
            .components
            .get_or_insert_with(|| connected_components(self.tn.graph()));
        let comp_of = |v: NodeId| comps.labels[v as usize];
        let comp_size = |v: NodeId| comps.sizes[comps.labels[v as usize] as usize];
        for (slot, q) in queries.iter().enumerate() {
            match *q {
                PointQuery::Reaches { u, v, by } => {
                    self.stats.point_queries += 1;
                    if self.cursor_live {
                        self.stats.cursor_hits += 1;
                        let arrival = self.scratch.delta.arrival(u, v).filter(|&t| t <= by);
                        tmp[slot] = Some(PointAnswer::Reaches {
                            reached: arrival.is_some(),
                            arrival,
                        });
                    } else if u != v && comp_of(u) != comp_of(v) {
                        self.stats.component_skips += 1;
                        tmp[slot] = Some(PointAnswer::Reaches {
                            reached: false,
                            arrival: None,
                        });
                    } else {
                        self.lane_slots.push(slot);
                        self.lanes
                            .push(Lane::reaches(u, v, by).with_saturation(comp_size(u)));
                    }
                }
                PointQuery::Foremost { u, v } => {
                    self.stats.point_queries += 1;
                    if self.cursor_live {
                        self.stats.cursor_hits += 1;
                        tmp[slot] = Some(PointAnswer::Foremost(self.scratch.delta.arrival(u, v)));
                    } else if u != v && comp_of(u) != comp_of(v) {
                        self.stats.component_skips += 1;
                        tmp[slot] = Some(PointAnswer::Foremost(None));
                    } else {
                        self.lane_slots.push(slot);
                        self.lanes
                            .push(Lane::foremost(u, v).with_saturation(comp_size(u)));
                    }
                }
                PointQuery::DistanceRow { u, horizon } => {
                    self.stats.row_queries += 1;
                    if batch_regime {
                        row_of_lane[self.lanes.len()] = rows.len();
                        let mut row = vec![NEVER; n];
                        row[u as usize] = 0;
                        rows.push(row);
                        self.lane_slots.push(slot);
                        self.lanes
                            .push(Lane::row(u, horizon).with_saturation(comp_size(u)));
                    } else {
                        dispatched.push((slot, u, horizon));
                    }
                }
            }
        }
        if !self.lanes.is_empty() {
            self.stats.lane_passes += 1;
            self.lane_arrivals.clear();
            self.lane_arrivals.resize(self.lanes.len(), NEVER);
            let rows_ref = &mut rows;
            let lane_stats: LaneStats = self.scratch.batch.sweep_lanes(
                &self.tn,
                &self.lanes,
                0,
                &mut self.lane_arrivals,
                |v, mut bits, t| {
                    while bits != 0 {
                        let lane = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let r = row_of_lane[lane];
                        if r != usize::MAX {
                            rows_ref[r][v as usize] = t;
                        }
                    }
                },
            );
            self.stats.retired_early += lane_stats.retired_early as u64;
            self.stats.buckets_visited += lane_stats.buckets_visited as u64;
            let mut rows_iter = rows.into_iter();
            for (lane, &slot) in self.lane_slots.iter().enumerate() {
                let answer = if row_of_lane[lane] != usize::MAX {
                    PointAnswer::DistanceRow(rows_iter.next().expect("one row per row lane"))
                } else {
                    let arrival = self.lane_arrivals[lane];
                    let arrival = (arrival != NEVER).then_some(arrival);
                    match queries[slot] {
                        PointQuery::Reaches { .. } => PointAnswer::Reaches {
                            reached: arrival.is_some(),
                            arrival,
                        },
                        PointQuery::Foremost { .. } => PointAnswer::Foremost(arrival),
                        PointQuery::DistanceRow { .. } => unreachable!("row lanes are marked"),
                    }
                };
                tmp[slot] = Some(answer);
            }
        }
        for (slot, u, horizon) in dispatched {
            self.stats.dispatched_rows += 1;
            let mut row = vec![NEVER; n];
            row[u as usize] = 0;
            let run = RowSweep {
                tn: &self.tn,
                scratch: &mut self.scratch,
                source: u,
                horizon,
                out: &mut row,
            };
            EngineChoice::dispatch(&self.tn, 1, run)
                .expect("row dispatch only runs above the batch crossover");
            tmp[slot] = Some(PointAnswer::DistanceRow(row));
        }
        for answer in tmp.iter_mut().take(queries.len()) {
            out.push(answer.take().expect("every query produced an answer"));
        }
    }

    /// Record (or re-record) the maintained cursor from the resident
    /// network through whichever engine the density dispatch selects;
    /// subsequent target queries answer from the cursor log with no
    /// sweep, and [`QuerySession::move_label`] maintains it in place.
    pub fn record_cursor(&mut self) -> (WideStats, EngineKind) {
        let recorded = self.scratch.record_delta(&self.tn);
        self.cursor_live = true;
        recorded
    }

    /// Apply a single-label move to the resident instance through the
    /// cursor's retract-and-replay path — the session stays resident and
    /// its answers stay bit-identical to a cold rebuild of the mutated
    /// network (the `move_then_queries_match_a_cold_rebuild` regression).
    /// Records the cursor first when none is live. Returns `None` (and
    /// changes nothing) for invalid moves, exactly like
    /// [`TemporalNetwork::move_label`].
    pub fn move_label(&mut self, e: EdgeId, from: Time, to: Time) -> Option<DeltaApply> {
        if !self.cursor_live {
            self.record_cursor();
        }
        self.scratch
            .delta
            .apply_label_move(&mut self.tn, e, from, to)
    }

    /// Swap in a freshly drawn assignment (returning the displaced one
    /// for the caller's buffer pool) and invalidate the cursor — the
    /// Monte Carlo per-trial path of `ephemeral-core`, now running
    /// against pooled session scratch.
    ///
    /// # Errors
    /// As [`TemporalNetwork::replace_assignment`]: the drawn assignment
    /// must cover the same edges within the same lifetime.
    pub fn replace_assignment(
        &mut self,
        drawn: LabelAssignment,
    ) -> Result<LabelAssignment, TemporalError> {
        self.cursor_live = false;
        self.tn.replace_assignment(drawn)
    }

    /// Does the resident assignment preserve static reachability
    /// (`T_reach`, Definition 6)? Sequential, against the session's own
    /// pooled scratch — the probe path of `minimal_r_adaptive`.
    #[must_use]
    pub fn treach_holds(&mut self) -> bool {
        treach_holds_scratch(&self.tn, &mut self.scratch)
    }

    /// Drop the cursor (answers fall back to lane passes). The serve
    /// layer calls this when a panic unwinds out of a cursor apply: the
    /// network's own move completed before the replay started, so only
    /// the memoized log is suspect.
    pub fn invalidate_cursor(&mut self) {
        self.cursor_live = false;
    }

    /// Replace the engine scratch wholesale (cursor included) — the
    /// serve layer's recovery from a panic that unwound mid-sweep and
    /// may have left engine buffers mid-update.
    pub fn reset_scratch(&mut self) {
        self.scratch = SweepScratch::new();
        self.cursor_live = false;
    }

    /// Deconstruct into the resident network and scratch bundle.
    #[must_use]
    pub fn into_parts(self) -> (TemporalNetwork, SweepScratch) {
        (self.tn, self.scratch)
    }
}

/// Row query served by a dispatched full-width engine (one source, the
/// engine's own horizon semantics) — the `EngineChoice` fallback of
/// [`QuerySession::answer_batch_into`].
struct RowSweep<'a> {
    tn: &'a TemporalNetwork,
    scratch: &'a mut SweepScratch,
    source: NodeId,
    horizon: Time,
    out: &'a mut [Time],
}

impl FrontierRun for RowSweep<'_> {
    type Out = ();
    fn run<S: FrontierEngine>(self, _shards: usize) {
        let sweeper = S::from_scratch(self.scratch);
        let out = self.out;
        sweeper.sweep_with_horizon(
            self.tn,
            self.source..self.source + 1,
            0,
            self.horizon,
            |v, _w, bits, t| {
                if bits & 1 == 1 {
                    out[v as usize] = t;
                }
            },
        );
    }
}

/// Per-lane temporal reach counts of one contiguous source block (each
/// source counts itself), computed by a single lane pass with per-lane
/// saturation exit — the shared core of the `T_reach` probes and
/// batched fallbacks in [`reachability`](crate::reachability).
/// Allocation-free once the sweeper is warm.
///
/// # Panics
/// If `block.len() > MAX_LANES` or any source is out of range.
#[must_use]
pub fn reach_counts(
    tn: &TemporalNetwork,
    sweeper: &mut BatchSweeper,
    block: Range<NodeId>,
) -> [usize; MAX_LANES] {
    let mut counts = [0usize; MAX_LANES];
    let mut arrivals = [NEVER; MAX_LANES];
    let mut lanes = [Lane::row(0, NEVER); MAX_LANES];
    let width = block.len();
    for (i, s) in block.enumerate() {
        lanes[i].source = s;
        counts[i] = 1;
    }
    sweeper.sweep_lanes(
        tn,
        &lanes[..width],
        0,
        &mut arrivals[..width],
        |_, mut bits, _| {
            while bits != 0 {
                counts[bits.trailing_zeros() as usize] += 1;
                bits &= bits - 1;
            }
        },
    );
    counts
}

/// Did every source of `block` reach all `n` vertices? One lane pass
/// with per-lane saturation exit — the batched fallback core of
/// [`is_temporally_connected`](crate::reachability::is_temporally_connected).
///
/// # Panics
/// As [`reach_counts`].
#[must_use]
pub fn block_all_reached(
    tn: &TemporalNetwork,
    sweeper: &mut BatchSweeper,
    block: Range<NodeId>,
) -> bool {
    let n = tn.num_nodes();
    let width = block.len();
    let mut arrivals = [NEVER; MAX_LANES];
    let mut lanes = [Lane::row(0, NEVER); MAX_LANES];
    for (i, s) in block.enumerate() {
        lanes[i].source = s;
    }
    let stats = sweeper.sweep_lanes(tn, &lanes[..width], 0, &mut arrivals[..width], |_, _, _| {});
    stats.reached_bits == width * n
}

/// Closure rows of one contiguous source block via a single lane pass:
/// `rows` is resized to `block.len() × ⌈n/64⌉` words and filled with
/// bit `(i, v)` set iff `block.start + i` reaches `v` — the batched
/// fallback core of
/// [`ReachabilityMatrix::compute`](crate::closure::ReachabilityMatrix::compute).
///
/// # Panics
/// As [`reach_counts`].
pub fn closure_rows_into(
    tn: &TemporalNetwork,
    sweeper: &mut BatchSweeper,
    block: Range<NodeId>,
    rows: &mut Vec<u64>,
) {
    let n = tn.num_nodes();
    let words_per_row = n.div_ceil(64);
    let width = block.len();
    let mut arrivals = [NEVER; MAX_LANES];
    let mut lanes = [Lane::row(0, NEVER); MAX_LANES];
    for (i, s) in block.enumerate() {
        lanes[i].source = s;
    }
    rows.clear();
    rows.resize(width * words_per_row, 0);
    sweeper.sweep_lanes(tn, &lanes[..width], 0, &mut arrivals[..width], |_, _, _| {});
    for v in 0..n {
        let mut reaching = sweeper.lanes_reaching(v as NodeId);
        while reaching != 0 {
            let lane = reaching.trailing_zeros() as usize;
            reaching &= reaching - 1;
            rows[lane * words_per_row + v / 64] |= 1 << (v % 64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foremost::{foremost, foremost_with_horizon};
    use ephemeral_graph::generators;
    use ephemeral_rng::{RandomSource, SeedSequence};

    fn random_network(seed: u64, n: usize, lifetime: Time) -> TemporalNetwork {
        let mut rng = SeedSequence::new(seed).rng(0);
        let g = generators::gnp(n, 3.0 / n as f64, false, &mut rng);
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, lifetime)]).unwrap();
        TemporalNetwork::new(g, labels, lifetime).unwrap()
    }

    fn mixed_queries(seed: u64, n: usize, lifetime: Time, k: usize) -> Vec<PointQuery> {
        let mut rng = SeedSequence::new(seed).rng(7);
        (0..k)
            .map(|_| {
                let u = rng.range_u32(0, n as u32 - 1);
                let v = rng.range_u32(0, n as u32 - 1);
                match rng.index(4) {
                    0 => PointQuery::Reaches {
                        u,
                        v,
                        by: rng.range_u32(1, lifetime),
                    },
                    1 => PointQuery::DistanceRow {
                        u,
                        horizon: if rng.index(2) == 0 {
                            NEVER
                        } else {
                            rng.range_u32(1, lifetime)
                        },
                    },
                    _ => PointQuery::Foremost { u, v },
                }
            })
            .collect()
    }

    fn oracle(tn: &TemporalNetwork, q: &PointQuery) -> PointAnswer {
        match *q {
            PointQuery::Reaches { u, v, by } => {
                let arrival = foremost_with_horizon(tn, u, 0, by).arrival(v);
                PointAnswer::Reaches {
                    reached: arrival.is_some(),
                    arrival,
                }
            }
            PointQuery::Foremost { u, v } => PointAnswer::Foremost(foremost(tn, u, 0).arrival(v)),
            PointQuery::DistanceRow { u, horizon } => PointAnswer::DistanceRow(
                foremost_with_horizon(tn, u, 0, horizon).arrivals().to_vec(),
            ),
        }
    }

    #[test]
    fn batched_answers_match_the_scalar_oracle() {
        for seed in 0..5 {
            let (n, lifetime) = (60, 120);
            let tn = random_network(seed, n, lifetime);
            let mut session = QuerySession::new(tn);
            let queries = mixed_queries(seed, n, lifetime, 50);
            let answers = session.answer_batch(&queries);
            for (q, a) in queries.iter().zip(&answers) {
                assert_eq!(*a, oracle(session.network(), q), "seed {seed} query {q:?}");
            }
        }
    }

    #[test]
    fn cursor_resident_answers_are_identical() {
        let (n, lifetime) = (50, 80);
        let tn = random_network(3, n, lifetime);
        let mut session = QuerySession::new(tn);
        let queries = mixed_queries(3, n, lifetime, 40);
        let cold = session.answer_batch(&queries);
        session.record_cursor();
        assert!(session.cursor_live());
        let warm = session.answer_batch(&queries);
        assert_eq!(cold, warm);
        assert!(session.stats().cursor_hits > 0, "cursor path exercised");
    }

    #[test]
    fn move_then_queries_match_a_cold_rebuild() {
        let (n, lifetime) = (48, 60);
        let mut session = QuerySession::new(random_network(5, n, lifetime));
        let mut rng = SeedSequence::new(5).rng(3);
        let m = session.network().assignment().num_edges();
        let queries = mixed_queries(5, n, lifetime, 30);
        for step in 0..40 {
            let e = rng.index(m) as EdgeId;
            let labels = session.network().labels(e);
            let from = labels[rng.index(labels.len())];
            let _ = session.move_label(e, from, rng.range_u32(1, lifetime));
            if step % 10 == 0 {
                // Bit-identical to a cold rebuild of the mutated network.
                let mut cold = QuerySession::new(session.network().clone());
                assert_eq!(
                    session.answer_batch(&queries),
                    cold.answer_batch(&queries),
                    "step {step}"
                );
            }
        }
    }

    #[test]
    fn wide_regime_rows_dispatch_and_match() {
        let n = crate::wide::WIDE_CROSSOVER + 10;
        let lifetime = 64;
        let tn = random_network(11, n, lifetime);
        assert_ne!(EngineChoice::pick_for(&tn), EngineKind::Batch);
        let mut session = QuerySession::new(tn);
        let queries = vec![
            PointQuery::DistanceRow {
                u: 3,
                horizon: NEVER,
            },
            PointQuery::Foremost {
                u: 0,
                v: (n - 1) as NodeId,
            },
            PointQuery::DistanceRow {
                u: (n - 1) as NodeId,
                horizon: 9,
            },
        ];
        let answers = session.answer_batch(&queries);
        for (q, a) in queries.iter().zip(&answers) {
            assert_eq!(*a, oracle(session.network(), q), "query {q:?}");
        }
        assert_eq!(session.stats().dispatched_rows, 2);
        assert_eq!(session.stats().lane_passes, 1);
    }

    #[test]
    fn replace_assignment_invalidates_the_cursor() {
        let (n, lifetime) = (30, 40);
        let mut session = QuerySession::new(random_network(7, n, lifetime));
        session.record_cursor();
        let m = session.network().assignment().num_edges();
        let mut rng = SeedSequence::new(8).rng(0);
        let drawn = LabelAssignment::from_fn(m, |_| vec![rng.range_u32(1, lifetime)]).unwrap();
        let _old = session.replace_assignment(drawn).unwrap();
        assert!(!session.cursor_live());
        let queries = mixed_queries(9, n, lifetime, 20);
        let answers = session.answer_batch(&queries);
        for (q, a) in queries.iter().zip(&answers) {
            assert_eq!(*a, oracle(session.network(), q), "query {q:?}");
        }
    }

    #[test]
    fn shared_primitives_match_their_direct_counterparts() {
        let tn = random_network(2, 70, 90);
        let mut sweeper = BatchSweeper::new();
        let counts = reach_counts(&tn, &mut sweeper, 0..64);
        for (lane, &count) in counts.iter().take(64).enumerate() {
            assert_eq!(
                count,
                foremost(&tn, lane as NodeId, 0).reached_count(),
                "lane {lane}"
            );
        }
        let all = block_all_reached(&tn, &mut sweeper, 0..64);
        assert_eq!(
            all,
            (0..64).all(|s| foremost(&tn, s, 0).reached_count() == 70)
        );
        let mut rows = Vec::new();
        closure_rows_into(&tn, &mut sweeper, 64..70, &mut rows);
        let wpr = 70usize.div_ceil(64);
        for (i, s) in (64..70u32).enumerate() {
            let run = foremost(&tn, s, 0);
            for v in 0..70usize {
                let bit = rows[i * wpr + v / 64] >> (v % 64) & 1 == 1;
                assert_eq!(bit, run.arrival(v as NodeId).is_some(), "{s} -> {v}");
            }
        }
    }

    #[test]
    fn resident_bytes_are_deterministic_and_grow_with_the_cursor() {
        let tn = random_network(4, 40, 50);
        let mut a = QuerySession::new(tn.clone());
        let mut b = QuerySession::new(tn);
        assert_eq!(a.resident_bytes(), b.resident_bytes());
        let before = a.resident_bytes();
        a.record_cursor();
        assert!(a.resident_bytes() > before, "cursor adds resident bytes");
        b.record_cursor();
        assert_eq!(a.resident_bytes(), b.resident_bytes());
    }

    #[test]
    #[should_panic(expected = "at most 64 queries")]
    fn oversized_batches_panic() {
        let mut session = QuerySession::new(random_network(1, 10, 10));
        let queries: Vec<PointQuery> = (0..65)
            .map(|_| PointQuery::Foremost { u: 0, v: 1 })
            .collect();
        let _ = session.answer_batch(&queries);
    }
}
