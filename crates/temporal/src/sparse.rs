//! Event-driven sparse-frontier sweep engine: the closure engine for the
//! regime where nothing saturates.
//!
//! [`WideSweeper`] already skips empty buckets
//! and stops at saturation, but on *sparse, disconnected* instances —
//! `G(n, p)` at the `c·ln n / n` threshold, random regular graphs, tori,
//! the substrates the paper's connectivity results live on — neither
//! rescue applies: every occupied bucket is visited and every one of the
//! bucket's edges walks `W = ⌈n/64⌉` frontier words per direction, even
//! though a typical frontier holds a few dozen set bits for the whole
//! sweep (temporal reachability sets stay small below the connectivity
//! threshold). [`SparseSweeper`] preserves the exact "reached strictly
//! before `t`" per-bucket semantics but stores each vertex's frontier as
//! a **sorted list of reaching lanes** in an append-only arena, so the
//! per-bucket cost scales with the frontiers that actually **changed**,
//! never with `n × W`:
//!
//! * **Merge propagation.** An edge `(u, v)` at time `t` merges two
//!   sorted lane lists — `O(|L_u| + |L_v|)` sequential word-stream work;
//!   the elements unique to the source side are exactly the fresh
//!   arrivals. Nothing proportional to `n` or `W` is ever touched.
//! * **Region sharing.** List regions are immutable (updates append a
//!   new region and re-point), so after an undirected exchange both
//!   endpoints *share* the union region: a later edge between equally
//!   reachable vertices is recognised by a pointer compare and costs
//!   `O(1)`. An edge into a still-empty frontier (the common case in
//!   column-block sweeps) adopts the source's region — also `O(1)`, no
//!   copy.
//! * **Version-memoised relabels.** Every vertex has a change counter;
//!   each (edge, direction) remembers the source's counter from its last
//!   application, so a relabel of the same edge whose source has not
//!   changed since is skipped outright — sound because the previous
//!   application already transferred everything missing, frontiers only
//!   grow, and labels along a journey strictly increase (Definition 2).
//!   Under single-label assignments the memo (and its `O(m)` reset) is
//!   skipped entirely.
//! * **Conflict-scanned buckets.** Endpoint-disjoint buckets (virtually
//!   all buckets at sparse fill) commit in place edge by edge. A bucket
//!   with a shared endpoint falls back to a snapshot discipline: every
//!   endpoint's `(start, len)` is recorded before the bucket runs,
//!   sources read the snapshot, targets merge live — reproducing the
//!   frozen-`before` bucket commit of the scalar sweep exactly.
//! * The wide engine's **saturation early-exit** and **empty-bucket
//!   skipping** (via [`TemporalNetwork::occupied_times`]) are kept.
//!
//! The `n × ⌈n/64⌉` closure matrix consumers read through
//! [`SparseSweeper::reach_word`] is **materialised lazily** from the
//! lists after the sweep (`O(reached bits)`); sweeps that only need
//! stats or arrival callbacks never build it — which is also what makes
//! an `n = 65536` closure feasible: the arena holds the reached pairs
//! (a few MiB), not a gigabyte of mostly-zero frontier words.
//!
//! Per-(source, target) arrival times are **bit-identical** to the wide
//! engine, the batched engine and `n` scalar
//! [`foremost`](crate::foremost::foremost) sweeps
//! (`tests/sparse_proptests.rs` pins all three, plus horizons, start
//! times, ragged `n` and block sharding).
//!
//! ## Engine choice
//!
//! [`EngineChoice::pick`] replaces the old `n`-only `WIDE_CROSSOVER`
//! dispatch at every all-source entry point: below the crossover the
//! 64-lane batched engine still wins; above it the *density* of the
//! occupied buckets decides — instances whose occupied buckets carry at
//! least `n / 16` time-edges on average (cliques, complete bipartite
//! substrates: saturation plausible, branch-free inner loop worth it)
//! keep the wide engine, everything sparser goes event-driven.

use crate::network::TemporalNetwork;
use crate::wide::{
    cache_block_count, EngineKind, FrontierEngine, SweepScratch, WideStats, WideSweeper,
    WIDE_CROSSOVER,
};
use crate::Time;
use ephemeral_graph::NodeId;
use std::ops::Range;

/// Average time-edges per occupied bucket, as a fraction of `n`, above
/// which the all-source entry points prefer the branch-free
/// [`WideSweeper`] over the event-driven
/// [`SparseSweeper`]: `M / occupied ≥ n / DENSE_BUCKET_DIVISOR` reads
/// "each visited bucket touches a constant fraction of the vertices", the
/// regime where the closure saturates within a few buckets and the wide
/// engine's early-exit dominates.
pub const DENSE_BUCKET_DIVISOR: usize = 16;

/// Time-edges per vertex above which the event-driven engine loses even
/// when the buckets are diffuse: past `M > SPARSE_EDGE_FACTOR · n` the
/// temporal reach sets grow towards `Θ(n)` (the static average degree is
/// high enough for a well-connected giant cluster), every reacher-list
/// merge streams a long list, and the wide engine's fixed `W`-word rows
/// win back. Near-threshold `G(n, p = c·ln n / n)` instances sit above
/// this bound; the genuinely sparse substrates (constant average degree,
/// stars, paths, tori, random regular graphs) sit below it.
pub const SPARSE_EDGE_FACTOR: usize = 3;

/// The density-aware engine dispatch used uniformly by the all-source
/// entry points (closure, distances, diameter, connectivity, `T_reach`,
/// metrics) and the Monte Carlo scratch loops.
#[derive(Debug, Clone, Copy)]
pub struct EngineChoice;

impl EngineChoice {
    /// Pick the engine for an `n`-vertex instance with
    /// `occupied_buckets` non-empty time buckets and `time_edges` labels:
    /// [`EngineKind::Batch`] below [`WIDE_CROSSOVER`] (the wide matrix is
    /// a few words per vertex there and the batched frontier wins
    /// regardless of density); above it [`EngineKind::Sparse`] only for
    /// genuinely sparse instances — diffuse buckets (average fill below
    /// `n /` [`DENSE_BUCKET_DIVISOR`]) *and* constant-ish average degree
    /// (at most [`SPARSE_EDGE_FACTOR`] time-edges per vertex, keeping the
    /// reacher lists short) — and [`EngineKind::Wide`] otherwise.
    ///
    /// ```
    /// use ephemeral_temporal::sparse::EngineChoice;
    /// use ephemeral_temporal::wide::EngineKind;
    ///
    /// // Small n: always batched.
    /// assert_eq!(EngineChoice::pick(64, 64, 2016), EngineKind::Batch);
    /// // Dense clique at a = n: every bucket floods a constant fraction.
    /// assert_eq!(EngineChoice::pick(4096, 4096, 16_773_120), EngineKind::Wide);
    /// // Near-threshold G(n, p = 1.5·ln n / n): diffuse buckets but high
    /// // degree — reach sets grow towards n, the wide engine keeps it.
    /// assert_eq!(EngineChoice::pick(4096, 4093, 25_562), EngineKind::Wide);
    /// // Sparse G(n, p) at average degree 4, lifetime 4n: event-driven.
    /// assert_eq!(EngineChoice::pick(4096, 6328, 8066), EngineKind::Sparse);
    /// ```
    #[must_use]
    pub const fn pick(n: usize, occupied_buckets: usize, time_edges: usize) -> EngineKind {
        if n < WIDE_CROSSOVER {
            return EngineKind::Batch;
        }
        let occupied = if occupied_buckets == 0 {
            1
        } else {
            occupied_buckets
        };
        if time_edges.saturating_mul(DENSE_BUCKET_DIVISOR) >= occupied.saturating_mul(n)
            || time_edges > SPARSE_EDGE_FACTOR.saturating_mul(n)
        {
            EngineKind::Wide
        } else {
            EngineKind::Sparse
        }
    }

    /// [`EngineChoice::pick`] fed from a network's own counts
    /// (`num_nodes`, `occupied_times().len()`, `num_time_edges`).
    #[must_use]
    pub fn pick_for(tn: &TemporalNetwork) -> EngineKind {
        Self::pick(
            tn.num_nodes(),
            tn.occupied_times().len(),
            tn.num_time_edges(),
        )
    }

    /// The one dispatch wrapper every full-width entry point shares.
    ///
    /// Above the batch crossover, runs `r` with the engine type
    /// [`EngineChoice::pick_for`] selects and that engine's column-shard
    /// count: the wide engine shards into
    /// `workers.max(cache_block_count(n))` blocks so its cache blocking
    /// engages regardless of worker count, the sparse engine only as far
    /// as the workers (its lists are cache-light and every block re-pays
    /// the occupied-bucket walk). Below the crossover returns `None` and
    /// the caller runs its batched path — the 64-lane
    /// [`BatchSweeper`](crate::engine::BatchSweeper) is not a
    /// [`FrontierEngine`].
    ///
    /// Sequential scratch callers pass `workers = 1` (wide then shards to
    /// exactly its cache schedule, sparse to the single block `0..n`) and
    /// fetch their warm engine inside `run` via
    /// [`FrontierEngine::from_scratch`].
    pub fn dispatch<R: FrontierRun>(tn: &TemporalNetwork, workers: usize, r: R) -> Option<R::Out> {
        let n = tn.num_nodes();
        match Self::pick_for(tn) {
            EngineKind::Wide => Some(r.run::<WideSweeper>(workers.max(cache_block_count(n)))),
            EngineKind::Sparse => Some(r.run::<SparseSweeper>(workers)),
            _ => None,
        }
    }
}

/// A full-width computation generic over the frontier engine: the body
/// that used to be copied into every `match EngineChoice::pick_for` arm,
/// written once. The closure, distance, diameter, connectivity,
/// `T_reach`, metrics and delta entry points each implement this with
/// their per-block work; [`EngineChoice::dispatch`] instantiates it with
/// the engine type and shard count the density dispatch selects.
pub trait FrontierRun {
    /// What the computation produces.
    type Out;

    /// Run through engine `S`, sharding the sources into `shards`
    /// word-aligned column blocks (see
    /// [`source_blocks`](crate::wide::source_blocks) /
    /// [`block_schedule`](crate::wide::block_schedule) /
    /// [`probe_blocks`](crate::wide::probe_blocks)).
    fn run<S: FrontierEngine>(self, shards: usize) -> Self::Out;
}

/// Sentinel for "this (edge, direction) has never propagated".
const NEVER_APPLIED: u64 = u64::MAX;

/// The arena is addressed by `u32` region offsets; growing past that is
/// astronomically far outside any dispatched workload (the arena holds
/// reached pairs), but a direct caller on an adversarial instance must
/// get a panic, not silently wrapped offsets.
#[inline]
fn arena_offset(arena: &[u32]) -> u32 {
    u32::try_from(arena.len()).expect("sparse arena exceeds u32 region offsets")
}

/// A vertex's frontier region: `arena[start .. start + len]`, one 8-byte
/// slot so an application touches a single metadata cache line per
/// endpoint. `u32` offsets bound the arena at 4 Gi entries — far beyond
/// any dispatched workload (the arena holds the reached pairs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Region {
    start: u32,
    len: u32,
}

/// A word-grouped callback accumulator: collects consecutive fresh lanes
/// of one 64-lane word into a mask and flushes one `on_reach` per word —
/// the wide engine's callback granularity, produced inline during a
/// merge (fresh lanes are discovered in ascending order).
struct MaskEmitter {
    word: usize,
    mask: u64,
    fresh: u32,
}

impl MaskEmitter {
    #[inline]
    const fn new() -> Self {
        Self {
            word: usize::MAX,
            mask: 0,
            fresh: 0,
        }
    }

    #[inline]
    fn push(
        &mut self,
        lane: u32,
        v: NodeId,
        t: Time,
        on_reach: &mut impl FnMut(NodeId, usize, u64, Time),
    ) {
        let w = (lane / 64) as usize;
        if w != self.word {
            if self.mask != 0 {
                on_reach(v, self.word, self.mask, t);
            }
            self.word = w;
            self.mask = 0;
        }
        self.mask |= 1u64 << (lane % 64);
        self.fresh += 1;
    }

    #[inline]
    fn finish(
        self,
        v: NodeId,
        t: Time,
        on_reach: &mut impl FnMut(NodeId, usize, u64, Time),
    ) -> u32 {
        if self.mask != 0 {
            on_reach(v, self.word, self.mask, t);
        }
        self.fresh
    }
}

/// Fire `on_reach` for a sorted slice of fresh lanes, grouped per word.
#[inline]
fn emit(news: &[u32], v: NodeId, t: Time, on_reach: &mut impl FnMut(NodeId, usize, u64, Time)) {
    let mut em = MaskEmitter::new();
    for &lane in news {
        em.push(lane, v, t, on_reach);
    }
    let _ = em.finish(v, t, on_reach);
}

/// Union-merge the sorted lists of `u` and `v` into `out` (cleared
/// first), emitting each side's exclusives as the other side's fresh
/// arrivals inline. Returns `(fresh_u, fresh_v)`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn merge_dual_emitting(
    a: &[u32],
    b: &[u32],
    out: &mut Vec<u32>,
    u: NodeId,
    v: NodeId,
    t: Time,
    on_reach: &mut impl FnMut(NodeId, usize, u64, Time),
) -> (u32, u32) {
    out.clear();
    let mut em_u = MaskEmitter::new(); // b-exclusives reach u
    let mut em_v = MaskEmitter::new(); // a-exclusives reach v
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        out.push(x.min(y));
        if x < y {
            em_v.push(x, v, t, on_reach);
            i += 1;
        } else if y < x {
            em_u.push(y, u, t, on_reach);
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    for &x in &a[i..] {
        em_v.push(x, v, t, on_reach);
    }
    out.extend_from_slice(&b[j..]);
    for &y in &b[j..] {
        em_u.push(y, u, t, on_reach);
    }
    (em_u.finish(u, t, on_reach), em_v.finish(v, t, on_reach))
}

/// Union-merge the frozen source list `src` into the live dst list `d`,
/// writing the union into `out` (cleared first) and emitting the
/// src-exclusives as fresh arrivals of `dst`. Returns the fresh count.
#[inline]
fn merge_into_emitting(
    d: &[u32],
    src: &[u32],
    out: &mut Vec<u32>,
    dst: NodeId,
    t: Time,
    on_reach: &mut impl FnMut(NodeId, usize, u64, Time),
) -> u32 {
    out.clear();
    let mut em = MaskEmitter::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < d.len() && j < src.len() {
        let x = d[i];
        let y = src[j];
        out.push(x.min(y));
        if x < y {
            i += 1;
        } else if y < x {
            em.push(y, dst, t, on_reach);
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
    out.extend_from_slice(&d[i..]);
    out.extend_from_slice(&src[j..]);
    for &y in &src[j..] {
        em.push(y, dst, t, on_reach);
    }
    em.finish(dst, t, on_reach)
}

/// Reusable scratch state of the event-driven sparse-frontier sweep.
///
/// Construction is free; the first sweep sizes the per-vertex region
/// tables and the arena, and subsequent sweeps of same-shaped networks
/// reuse them, so a Monte Carlo loop that keeps one sweeper per worker
/// performs no per-trial allocation once warm (covered by
/// `ephemeral-core`'s allocation regression test).
///
/// ```
/// use ephemeral_graph::generators;
/// use ephemeral_temporal::sparse::SparseSweeper;
/// use ephemeral_temporal::wide::FrontierEngine;
/// use ephemeral_temporal::{LabelAssignment, TemporalNetwork, NEVER};
///
/// // 0—1 @1, 1—2 @2: all three sources answered in one pass.
/// let tn = TemporalNetwork::new(
///     generators::path(3),
///     LabelAssignment::from_vecs(vec![vec![1], vec![2]]).unwrap(),
///     2,
/// )
/// .unwrap();
/// let mut sweeper = SparseSweeper::new();
/// let mut arrivals = vec![NEVER; 3 * 3];
/// let stats = sweeper.arrivals_into(&tn, 0..3, 0, &mut arrivals);
/// assert_eq!(arrivals, vec![0, 1, 2, 1, 0, 2, NEVER, 2, 0]);
/// assert_eq!(stats.unreached_pairs(3), 1); // 2 never reaches 0
/// assert_eq!(stats.buckets_visited, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseSweeper {
    /// Append-only storage of the sorted lane lists; regions are
    /// immutable once written (updates append and re-point), which is
    /// what makes region sharing sound.
    arena: Vec<u32>,
    /// Per-vertex frontier region (`len == lanes` ⇔ saturated).
    meta: Vec<Region>,
    /// Pre-bucket region + version snapshots for conflicted buckets
    /// (valid where `stamp[v] == epoch`).
    snap_meta: Vec<Region>,
    snap_ver: Vec<u64>,
    /// Per-vertex change counter, bumped whenever the frontier grows.
    version: Vec<u64>,
    /// `version[src]` at the last application of each (edge, direction):
    /// slot `2e` for `u → v`, `2e + 1` for `v → u`. Unused (and never
    /// reset) under single-label assignments.
    edge_version: Vec<u64>,
    /// `stamp[v] == epoch` marks `v` as an endpoint already seen in the
    /// current bucket's conflict scan.
    stamp: Vec<u64>,
    /// Merge scratch: the union under construction.
    out_buf: Vec<u32>,
    /// The `n × ⌈lanes/64⌉` closure matrix, materialised lazily from the
    /// lists on the first [`SparseSweeper::reach_word`] call.
    before: Vec<u64>,
    materialized: bool,
    /// Words per row of the most recent sweep.
    width: usize,
    /// Vertices of the most recent sweep.
    n: usize,
}

impl SparseSweeper {
    /// A sweeper with empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Words per frontier row of the most recent sweep (`⌈lanes/64⌉`).
    #[must_use]
    pub const fn words_per_row(&self) -> usize {
        self.width
    }

    /// Word `w` of the closure row of `v` after the most recent sweep:
    /// bit `i` set iff source `sources.start + 64w + i` reached `v`
    /// (sources count themselves). The bit matrix is materialised from
    /// the reacher lists on the first call after a sweep
    /// (`O(reached bits)`); stats-only sweeps never pay for it.
    ///
    /// # Panics
    /// If `v` or `w` is out of range for the last swept network.
    #[must_use]
    pub fn reach_word(&mut self, v: NodeId, w: usize) -> u64 {
        assert!(w < self.width, "word {w} out of range");
        if !self.materialized {
            self.before.clear();
            self.before.resize(self.n * self.width, 0);
            for x in 0..self.n {
                let m = self.meta[x];
                let s = m.start as usize;
                for &lane in &self.arena[s..s + m.len as usize] {
                    self.before[x * self.width + lane as usize / 64] |= 1 << (lane % 64);
                }
            }
            self.materialized = true;
        }
        self.before[v as usize * self.width + w]
    }

    /// One event-driven sweep from the contiguous source range `sources`
    /// (lane `i` ↔ vertex `sources.start + i`), using labels strictly
    /// greater than `start_time`. `on_reach(v, w, fresh, t)` fires with
    /// the lanes of word `w` that first reached `v` at time `t`, in
    /// non-decreasing order of `t` — the wide engine's callback contract.
    ///
    /// # Panics
    /// If any source is out of range.
    pub fn sweep(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        on_reach: impl FnMut(NodeId, usize, u64, Time),
    ) -> WideStats {
        self.sweep_with_horizon(tn, sources, start_time, tn.lifetime(), on_reach)
    }

    /// [`SparseSweeper::sweep`] ignoring every label greater than
    /// `horizon` (matching `foremost_with_horizon` lane for lane).
    ///
    /// # Panics
    /// If any source is out of range.
    #[allow(clippy::too_many_lines)]
    pub fn sweep_with_horizon(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        horizon: Time,
        mut on_reach: impl FnMut(NodeId, usize, u64, Time),
    ) -> WideStats {
        let n = tn.num_nodes();
        let lanes = sources.len();
        let width = lanes.div_ceil(64);
        self.width = width;
        self.n = n;
        self.materialized = false;
        self.arena.clear();
        // Warm headroom: same-shaped redraws produce arenas of similar
        // size, so carrying the previous high-water (plus the seeds)
        // keeps warm trials allocation-free.
        self.arena.reserve(lanes);
        self.meta.clear();
        self.meta.resize(n, Region::default());
        self.snap_meta.clear();
        self.snap_meta.resize(n, Region::default());
        // The version counters exist only to feed the relabel memo;
        // under single-label assignments both they and the memo are idle
        // and skip their O(n)/O(m) resets and per-application traffic.
        let use_memo = tn.num_time_edges() > tn.graph().num_edges();
        self.snap_ver.clear();
        self.version.clear();
        if use_memo {
            self.snap_ver.resize(n, 0);
            self.version.resize(n, 0);
        }
        self.stamp.clear();
        self.stamp.resize(n, 0);
        self.out_buf.clear();
        self.out_buf.reserve(lanes);
        self.edge_version.clear();
        if use_memo {
            self.edge_version
                .resize(2 * tn.graph().num_edges(), NEVER_APPLIED);
        }
        for (lane, s) in sources.clone().enumerate() {
            assert!((s as usize) < n, "source {s} out of range");
            self.meta[s as usize] = Region {
                start: arena_offset(&self.arena),
                len: 1,
            };
            self.arena.push(lane as u32);
        }
        let target = lanes * n;
        let lane_count = lanes as u32;
        let mut reached = lanes;
        let mut last_arrival: Time = 0;
        let mut buckets_visited = 0usize;
        let mut epoch = 0u64;
        let directed = tn.graph().is_directed();
        let Self {
            arena,
            meta,
            snap_meta,
            snap_ver,
            version,
            edge_version,
            stamp,
            out_buf,
            ..
        } = self;
        for &t in tn.occupied_between(start_time, horizon) {
            if reached >= target {
                break; // saturated: no later bucket can set a fresh bit
            }
            buckets_visited += 1;
            let edges = tn.edges_at(t);
            // Conflict scan: sparse buckets almost never carry two edges
            // sharing an endpoint. Endpoint-disjoint buckets commit in
            // place edge by edge (each edge's reads and writes touch rows
            // no other edge of the bucket touches). A conflicted bucket
            // snapshots every endpoint's region first; sources then read
            // the snapshot while targets merge live — the frozen-`before`
            // discipline of the scalar sweep, list-shaped. Single-edge
            // buckets (the common case at sparse fill) skip the scan.
            epoch += 1;
            let mut conflict = false;
            if edges.len() > 1 {
                for &e in edges {
                    let (u, v) = tn.graph().endpoints(e);
                    for w in [u, v] {
                        let wi = w as usize;
                        if stamp[wi] == epoch {
                            conflict = true;
                        } else {
                            stamp[wi] = epoch;
                            snap_meta[wi] = meta[wi];
                            if use_memo {
                                snap_ver[wi] = version[wi];
                            }
                        }
                    }
                }
            }
            let mut bucket_fresh = 0usize;
            for &e in edges {
                let (u, v) = tn.graph().endpoints(e);
                if u == v {
                    continue; // a self-loop can never extend a journey
                }
                let (ui, vi) = (u as usize, v as usize);
                // Frozen sources: live regions in a disjoint bucket, the
                // pre-bucket snapshot in a conflicted one.
                let mu = if conflict { snap_meta[ui] } else { meta[ui] };
                let mv = if conflict { snap_meta[vi] } else { meta[vi] };
                let (su, sul) = (mu.start as usize, mu.len as usize);
                let (sv, svl) = (mv.start as usize, mv.len as usize);
                // The event-driven short-circuits, all one-word checks: a
                // direction is dead when its (frozen) source is empty,
                // its target is saturated, or its source has not changed
                // since this arc last propagated (a relabel).
                let fwd = sul != 0
                    && meta[vi].len != lane_count
                    && (!use_memo || edge_version[2 * e as usize] != version[ui]);
                let bwd = !directed
                    && svl != 0
                    && meta[ui].len != lane_count
                    && (!use_memo || edge_version[2 * e as usize + 1] != version[vi]);
                if !fwd && !bwd {
                    continue;
                }
                let mut fresh_u = 0u32;
                let mut fresh_v = 0u32;
                if fwd && bwd && !conflict {
                    // Undirected exchange in a disjoint bucket: both rows
                    // become the union, so they can *share* one region.
                    if su == sv && sul == svl {
                        // Identical shared region: nothing can flow.
                    } else if sul == 1 && svl == 1 {
                        // Singleton exchange — the dominant early shape.
                        let a = arena[su];
                        let b = arena[sv];
                        if a != b {
                            let out = arena_offset(arena);
                            arena.push(a.min(b));
                            arena.push(a.max(b));
                            meta[ui] = Region { start: out, len: 2 };
                            meta[vi] = Region { start: out, len: 2 };
                            fresh_u = 1;
                            fresh_v = 1;
                            on_reach(u, (b / 64) as usize, 1u64 << (b % 64), t);
                            on_reach(v, (a / 64) as usize, 1u64 << (a % 64), t);
                        }
                    } else {
                        let (fu, fv) = merge_dual_emitting(
                            &arena[su..su + sul],
                            &arena[sv..sv + svl],
                            out_buf,
                            u,
                            v,
                            t,
                            &mut on_reach,
                        );
                        fresh_u = fu;
                        fresh_v = fv;
                        if fresh_u == 0 && fresh_v == 0 {
                            // Equal content in different regions:
                            // canonicalise so the next meeting is O(1).
                            meta[ui] = mv;
                        } else {
                            let out = arena_offset(arena);
                            arena.extend_from_slice(out_buf);
                            let r = Region {
                                start: out,
                                len: out_buf.len() as u32,
                            };
                            meta[ui] = r;
                            meta[vi] = r;
                        }
                    }
                } else {
                    // Single directions (directed edges, one-sided
                    // eligibility, or a conflicted bucket, where the two
                    // directions must not share a region because later
                    // edges may grow either side independently).
                    if fwd {
                        fresh_v = propagate(arena, meta, out_buf, su, sul, vi, t, v, &mut on_reach);
                    }
                    if bwd {
                        fresh_u = propagate(arena, meta, out_buf, sv, svl, ui, t, u, &mut on_reach);
                    }
                }
                if use_memo {
                    if fresh_v > 0 {
                        version[vi] += 1;
                    }
                    if fresh_u > 0 {
                        version[ui] += 1;
                    }
                }
                // Record the memo *after* the bumps: whatever this
                // application moved, each target now contains everything
                // its frozen source held. In a conflicted bucket the
                // frozen content is the *snapshot*, and the source may
                // have grown since (as a target of another edge this
                // bucket) — the memo must record the snapshot's version,
                // or a later relabel would wrongly skip the newer bits.
                if use_memo {
                    if fwd {
                        edge_version[2 * e as usize] =
                            if conflict { snap_ver[ui] } else { version[ui] };
                    }
                    if bwd {
                        edge_version[2 * e as usize + 1] =
                            if conflict { snap_ver[vi] } else { version[vi] };
                    }
                }
                bucket_fresh += (fresh_u + fresh_v) as usize;
            }
            if bucket_fresh > 0 {
                reached += bucket_fresh;
                last_arrival = t;
            }
        }
        WideStats {
            lanes,
            reached_bits: reached,
            last_arrival,
            buckets_visited,
        }
    }

    /// Sweep and record per-pair arrival times into `out`, laid out
    /// `out[lane · n + v] = δ(sources.start + lane, v)` with [`NEVER`](crate::NEVER)
    /// marking unreachable pairs and each source reporting its own
    /// `start_time` — lane for lane the `arrivals()` array of a scalar
    /// foremost run.
    ///
    /// # Panics
    /// If `out.len() != sources.len() · n`, or as [`SparseSweeper::sweep`].
    pub fn arrivals_into(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        out: &mut [Time],
    ) -> WideStats {
        FrontierEngine::arrivals_into(self, tn, sources, start_time, out)
    }
}

/// One direction of an application: merge the frozen source region
/// `arena[su..su + sul]` into the live list of `dst`, re-pointing `dst`
/// at the union and emitting the fresh lanes. Returns the number of
/// fresh bits. An empty target adopts the source's region outright —
/// `O(1)`, no copy (regions are immutable).
#[allow(clippy::too_many_arguments)]
#[inline]
fn propagate(
    arena: &mut Vec<u32>,
    meta: &mut [Region],
    out_buf: &mut Vec<u32>,
    su: usize,
    sul: usize,
    dst: usize,
    t: Time,
    dst_id: NodeId,
    on_reach: &mut impl FnMut(NodeId, usize, u64, Time),
) -> u32 {
    let md = meta[dst];
    let (sd, dl) = (md.start as usize, md.len as usize);
    if dl == 0 {
        meta[dst] = Region {
            start: su as u32,
            len: sul as u32,
        };
        emit(&arena[su..su + sul], dst_id, t, on_reach);
        return sul as u32;
    }
    if sd == su && dl == sul {
        return 0; // identical shared region
    }
    let fresh = {
        let (d, src) = (&arena[sd..sd + dl], &arena[su..su + sul]);
        merge_into_emitting(d, src, out_buf, dst_id, t, on_reach)
    };
    if fresh > 0 {
        let out = arena_offset(arena);
        arena.extend_from_slice(out_buf);
        meta[dst] = Region {
            start: out,
            len: out_buf.len() as u32,
        };
    }
    fresh
}

impl FrontierEngine for SparseSweeper {
    fn sweep_with_horizon(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        horizon: Time,
        on_reach: impl FnMut(NodeId, usize, u64, Time),
    ) -> WideStats {
        Self::sweep_with_horizon(self, tn, sources, start_time, horizon, on_reach)
    }

    fn reach_word(&mut self, v: NodeId, w: usize) -> u64 {
        Self::reach_word(self, v, w)
    }

    fn words_per_row(&self) -> usize {
        Self::words_per_row(self)
    }

    fn kind() -> EngineKind {
        EngineKind::Sparse
    }

    fn from_scratch(scratch: &mut SweepScratch) -> &mut Self {
        &mut scratch.sparse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foremost::{foremost, foremost_with_horizon};
    use crate::wide::WideSweeper;
    use crate::{LabelAssignment, NEVER};
    use ephemeral_graph::{generators, GraphBuilder};
    use ephemeral_rng::{RandomSource, SeedSequence};

    fn random_network(seed: u64, n: usize, directed: bool, lifetime: Time) -> TemporalNetwork {
        let mut rng = SeedSequence::new(seed).rng(0);
        let g = generators::gnp(n, 0.12, directed, &mut rng);
        let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
            vec![rng.range_u32(1, lifetime), rng.range_u32(1, lifetime)]
        })
        .unwrap();
        TemporalNetwork::new(g, labels, lifetime).unwrap()
    }

    fn scalar_arrivals(tn: &TemporalNetwork, start: Time) -> Vec<Time> {
        let n = tn.num_nodes();
        let mut out = Vec::with_capacity(n * n);
        for s in 0..n as NodeId {
            out.extend_from_slice(foremost(tn, s, start).arrivals());
        }
        out
    }

    #[test]
    fn sparse_matches_scalar_on_a_path() {
        let g = generators::path(4);
        let labels = LabelAssignment::from_vecs(vec![vec![1], vec![2], vec![3]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 3).unwrap();
        let mut out = vec![0; 16];
        let stats = SparseSweeper::new().arrivals_into(&tn, 0..4, 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, 0));
        assert_eq!(stats.lanes, 4);
        assert_eq!(stats.last_arrival, 3);
        assert_eq!(stats.buckets_visited, 3);
    }

    #[test]
    fn sparse_matches_scalar_on_random_networks() {
        // 70 and 130 vertices: 2- and 3-word rows, ragged last word.
        for &n in &[70usize, 130] {
            for directed in [false, true] {
                let tn = random_network(3, n, directed, n as Time);
                let mut out = vec![0; n * n];
                SparseSweeper::new().arrivals_into(&tn, 0..n as NodeId, 0, &mut out);
                assert_eq!(out, scalar_arrivals(&tn, 0), "n {n} directed {directed}");
            }
        }
    }

    #[test]
    fn multi_label_edges_exercise_the_version_memo() {
        // Many labels per edge on a small graph: the same arc relabels
        // again and again, the exact shape the version memo short-circuits
        // — and the arrivals must still equal the scalar oracle.
        let mut rng = SeedSequence::new(9).rng(4);
        let g = generators::gnp(40, 0.2, false, &mut rng);
        let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
            (0..12).map(|_| rng.range_u32(1, 200)).collect()
        })
        .unwrap();
        let tn = TemporalNetwork::new(g, labels, 200).unwrap();
        let mut out = vec![0; 40 * 40];
        SparseSweeper::new().arrivals_into(&tn, 0..40, 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, 0));
    }

    #[test]
    fn dense_conflicted_buckets_match_scalar() {
        // Few buckets, many edges per bucket: shared endpoints everywhere,
        // so the snapshot slow path carries the sweep.
        let mut rng = SeedSequence::new(31).rng(7);
        let g = generators::gnp(50, 0.3, false, &mut rng);
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, 5)]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 5).unwrap();
        let mut out = vec![0; 50 * 50];
        SparseSweeper::new().arrivals_into(&tn, 0..50, 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, 0));
    }

    #[test]
    fn nonzero_start_time_matches_scalar() {
        let tn = random_network(5, 40, false, 40);
        for start in [1, 5, 39] {
            let mut out = vec![0; 40 * 40];
            SparseSweeper::new().arrivals_into(&tn, 0..40, start, &mut out);
            assert_eq!(out, scalar_arrivals(&tn, start), "start {start}");
        }
    }

    #[test]
    fn horizon_matches_scalar_horizon() {
        let tn = random_network(7, 30, false, 30);
        let horizon = 7;
        let mut got = vec![NEVER; 30 * 30];
        for s in 0..30 {
            got[s * 30 + s] = 0;
        }
        SparseSweeper::new().sweep_with_horizon(&tn, 0..30, 0, horizon, |v, w, mut fresh, t| {
            while fresh != 0 {
                let lane = w * 64 + fresh.trailing_zeros() as usize;
                got[lane * 30 + v as usize] = t;
                fresh &= fresh - 1;
            }
        });
        let mut expected = Vec::new();
        for s in 0..30 {
            expected.extend_from_slice(foremost_with_horizon(&tn, s, 0, horizon).arrivals());
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn saturation_early_exit_is_kept() {
        let g = generators::clique(8, false);
        let m = g.num_edges();
        let labels = LabelAssignment::from_vecs(vec![(1..=50).collect(); m]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 50).unwrap();
        let mut sweeper = SparseSweeper::new();
        let stats = sweeper.sweep(&tn, 0..8, 0, |_, _, _, _| {});
        assert!(stats.all_reached(8));
        assert_eq!(stats.buckets_visited, 1, "saturated after the first bucket");
        assert_eq!(stats.last_arrival, 1);
    }

    #[test]
    fn empty_buckets_are_skipped() {
        let g = generators::path(3);
        let labels = LabelAssignment::from_vecs(vec![vec![10], vec![20]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 1000).unwrap();
        let mut sweeper = SparseSweeper::new();
        let mut out = vec![0; 9];
        let stats = sweeper.arrivals_into(&tn, 0..3, 0, &mut out);
        assert_eq!(stats.buckets_visited, 2);
        assert_eq!(out, scalar_arrivals(&tn, 0));
    }

    #[test]
    fn stats_match_the_wide_engine() {
        for seed in [1u64, 2, 3] {
            let tn = random_network(seed, 90, seed == 2, 300);
            let mut wide = WideSweeper::new();
            let ws = wide.sweep(&tn, 0..90, 0, |_, _, _, _| {});
            let mut sparse = SparseSweeper::new();
            let ss = sparse.sweep(&tn, 0..90, 0, |_, _, _, _| {});
            assert_eq!(ss.lanes, ws.lanes, "seed {seed}");
            assert_eq!(ss.reached_bits, ws.reached_bits, "seed {seed}");
            assert_eq!(ss.last_arrival, ws.last_arrival, "seed {seed}");
            assert_eq!(ss.buckets_visited, ws.buckets_visited, "seed {seed}");
            for v in 0..90u32 {
                for w in 0..FrontierEngine::words_per_row(&sparse) {
                    assert_eq!(sparse.reach_word(v, w), wide.reach_word(v, w));
                }
            }
        }
    }

    #[test]
    fn block_decomposition_is_bit_identical_to_full_width() {
        use crate::wide::source_blocks;
        let n = 150usize;
        let tn = random_network(11, n, true, 60);
        let mut full = vec![0; n * n];
        SparseSweeper::new().arrivals_into(&tn, 0..n as NodeId, 0, &mut full);
        for threads in [1, 2, 3, 8] {
            let mut sharded = Vec::new();
            let mut sweeper = SparseSweeper::new();
            for block in source_blocks(n, threads) {
                let mut rows = vec![0; block.len() * n];
                sweeper.arrivals_into(&tn, block, 0, &mut rows);
                sharded.extend(rows);
            }
            assert_eq!(sharded, full, "threads {threads}");
        }
    }

    #[test]
    fn wide_rows_materialise_beyond_64_words() {
        // > 4096 lanes forces multi-word rows far beyond one summary word;
        // the lazily materialised closure must match scalar reachability.
        let n = 4100usize;
        let g = generators::path(n);
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |e| vec![1 + (e % 2) as Time]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 2).unwrap();
        let mut sweeper = SparseSweeper::new();
        let stats = sweeper.sweep(&tn, 0..n as NodeId, 0, |_, _, _, _| {});
        assert!(sweeper.words_per_row() > 64);
        let mut reached = 0usize;
        for s in (0..n).step_by(397) {
            let run = foremost(&tn, s as NodeId, 0);
            for (v, &a) in run.arrivals().iter().enumerate() {
                let bit = sweeper.reach_word(v as NodeId, s / 64) >> (s % 64) & 1 == 1;
                assert_eq!(bit, a != NEVER, "pair ({s},{v})");
            }
            reached += run.reached_count();
        }
        assert!(reached > 0);
        assert!(stats.reached_bits >= reached);
    }

    #[test]
    fn empty_sources_are_a_no_op() {
        let tn = random_network(4, 10, false, 10);
        let mut sweeper = SparseSweeper::new();
        let stats = sweeper.sweep(&tn, 0..0, 0, |_, _, _, _| panic!("no events"));
        assert_eq!(stats.lanes, 0);
        assert_eq!(stats.reached_bits, 0);
        assert_eq!(
            stats.buckets_visited, 0,
            "saturated before the first bucket"
        );
        assert!(stats.all_reached(10), "0 lanes trivially cover 0 bits");
    }

    #[test]
    fn directed_arcs_are_one_way() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let tn = TemporalNetwork::new(g, LabelAssignment::single(vec![1, 2]).unwrap(), 2).unwrap();
        let mut out = vec![0; 9];
        SparseSweeper::new().arrivals_into(&tn, 0..3, 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, 0));
        assert_eq!(out[6..9], [NEVER, NEVER, 0]); // 2 reaches only itself
    }

    #[test]
    fn sweeper_reuse_across_networks_is_clean() {
        let mut sweeper = SparseSweeper::new();
        let tn1 = random_network(1, 90, false, 90);
        let mut a1 = vec![0; 90 * 90];
        sweeper.arrivals_into(&tn1, 0..90, 0, &mut a1);
        let tn2 = random_network(2, 33, true, 33);
        let mut a2 = vec![0; 33 * 33];
        sweeper.arrivals_into(&tn2, 0..33, 0, &mut a2);
        assert_eq!(a2, scalar_arrivals(&tn2, 0));
        let mut a1b = vec![0; 90 * 90];
        sweeper.arrivals_into(&tn1, 0..90, 0, &mut a1b);
        assert_eq!(a1, a1b);
    }

    #[test]
    fn engine_choice_dispatches_by_density() {
        // Below the crossover: batch, whatever the density.
        assert_eq!(EngineChoice::pick(100, 1, 1_000_000), EngineKind::Batch);
        assert_eq!(
            EngineChoice::pick(WIDE_CROSSOVER - 1, 1, 0),
            EngineKind::Batch
        );
        // At the crossover the density decides.
        let n = WIDE_CROSSOVER;
        let dense = n / DENSE_BUCKET_DIVISOR; // per-bucket fill threshold
        assert_eq!(EngineChoice::pick(n, 10, 10 * dense), EngineKind::Wide);
        assert_eq!(
            EngineChoice::pick(n, 10, 10 * dense - 1),
            EngineKind::Sparse
        );
        // Degenerate: no occupied buckets — trivially sparse.
        assert_eq!(EngineChoice::pick(n, 0, 0), EngineKind::Sparse);
    }

    #[test]
    fn engine_choice_for_networks() {
        // Dense: every edge of K_200 labelled once over lifetime 200.
        let g = generators::clique(200, false);
        let m = g.num_edges();
        let mut rng = SeedSequence::new(1).rng(0);
        let labels = LabelAssignment::from_fn(m, |_| vec![rng.range_u32(1, 200)]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 200).unwrap();
        assert_eq!(EngineChoice::pick_for(&tn), EngineKind::Wide);
        // Sparse: a 200-path over lifetime 800.
        let g = generators::path(200);
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, 800)]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 800).unwrap();
        assert_eq!(EngineChoice::pick_for(&tn), EngineKind::Sparse);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let tn = random_network(1, 5, false, 5);
        let _ = SparseSweeper::new().sweep(&tn, 3..9, 0, |_, _, _, _| {});
    }
}
