//! Event-driven sparse-frontier sweep engine: the closure engine for the
//! regime where nothing saturates.
//!
//! [`WideSweeper`] already skips empty buckets
//! and stops at saturation, but on *sparse, disconnected* instances —
//! `G(n, p)` at the `c·ln n / n` threshold, random regular graphs, tori,
//! the substrates the paper's connectivity results live on — neither
//! rescue applies: every occupied bucket is visited and every one of the
//! bucket's edges walks `W = ⌈n/64⌉` frontier words per direction, even
//! though a typical frontier holds a few dozen set bits for the whole
//! sweep (temporal reachability sets stay small below the connectivity
//! threshold). [`SparseSweeper`] preserves the exact "reached strictly
//! before `t`" per-bucket semantics but stores each vertex's frontier as
//! a **sorted list of reaching lanes** in an append-only arena, so the
//! per-bucket cost scales with the frontiers that actually **changed**,
//! never with `n × W`:
//!
//! * **Merge propagation.** An edge `(u, v)` at time `t` merges two
//!   sorted lane lists — `O(|L_u| + |L_v|)` sequential word-stream work;
//!   the elements unique to the source side are exactly the fresh
//!   arrivals. Nothing proportional to `n` or `W` is ever touched.
//! * **Region sharing.** List regions are immutable (updates append a
//!   new region and re-point), so after an undirected exchange both
//!   endpoints *share* the union region: a later edge between equally
//!   reachable vertices is recognised by a pointer compare and costs
//!   `O(1)`. An edge into a still-empty frontier (the common case in
//!   column-block sweeps) adopts the source's region — also `O(1)`, no
//!   copy.
//! * **Version-memoised relabels.** Every vertex has a change counter;
//!   each (edge, direction) remembers the source's counter from its last
//!   application, so a relabel of the same edge whose source has not
//!   changed since is skipped outright — sound because the previous
//!   application already transferred everything missing, frontiers only
//!   grow, and labels along a journey strictly increase (Definition 2).
//!   Under single-label assignments the memo (and its `O(m)` reset) is
//!   skipped entirely.
//! * **Conflict-scanned buckets.** Endpoint-disjoint buckets (virtually
//!   all buckets at sparse fill) commit in place edge by edge. A bucket
//!   with a shared endpoint falls back to a snapshot discipline: every
//!   endpoint's `(start, len)` is recorded before the bucket runs,
//!   sources read the snapshot, targets merge live — reproducing the
//!   frozen-`before` bucket commit of the scalar sweep exactly.
//! * The wide engine's **saturation early-exit** and **empty-bucket
//!   skipping** (via [`TemporalNetwork::occupied_times`]) are kept.
//!
//! * **Arena compaction.** Relabel-heavy multi-label sweeps strand dead
//!   regions behind re-pointed frontiers; when the arena exceeds 3× the
//!   live-region footprint (and the
//!   [`SparseSweeper::set_compaction_floor`] floor), the
//!   engine **evacuates live regions between buckets** — sorted layout
//!   and intra-shard sharing preserved, accounted in
//!   [`WideStats::arena_hiwater_words`] / [`WideStats::compactions`].
//!
//! The `n × ⌈n/64⌉` closure matrix consumers read through
//! [`SparseSweeper::reach_word`] is never built whole: a **streaming
//! closure** materialises 256-row blocks on demand from the lists
//! (`O(reached bits)` per block) into an LRU bounded by a byte budget
//! ([`SparseSweeper::set_closure_budget_bytes`], 256 MiB default), and
//! whole-matrix
//! consumers stream rows through [`SparseSweeper::for_each_reach_row`]
//! with one pooled row buffer. Sweeps that only need stats or arrival
//! callbacks touch neither — which is what makes an `n = 10⁶` closure
//! feasible: the arena holds the reached pairs (a few MiB at constant
//! average degree), not the 116 GiB of mostly-zero frontier words.
//!
//! Sharded all-source sweeps (`lanes < n` over contiguous source blocks,
//! one [`SparseSweeper`] per worker walking the shared bucket index)
//! fold per-shard [`WideStats`] in canonical shard order, so the
//! parallel entry points are **bit-identical for any worker count**
//! (`tests/sparse_proptests.rs` pins 1/2/8). Partial-source sweeps run
//! **agenda-driven**: a time-keyed heap of the windows whose buckets can
//! matter, so a shard pays only its causal cone, not the full bucket
//! walk.
//!
//! Per-(source, target) arrival times are **bit-identical** to the wide
//! engine, the batched engine and `n` scalar
//! [`foremost`](crate::foremost::foremost) sweeps
//! (`tests/sparse_proptests.rs` pins all three, plus horizons, start
//! times, ragged `n` and block sharding).
//!
//! ## Engine choice
//!
//! [`EngineChoice::pick`] replaces the old `n`-only `WIDE_CROSSOVER`
//! dispatch at every all-source entry point: below the crossover the
//! 64-lane batched engine still wins; above it the *density* of the
//! occupied buckets decides — instances whose occupied buckets carry at
//! least `n / 16` time-edges on average (cliques, complete bipartite
//! substrates: saturation plausible, branch-free inner loop worth it)
//! keep the wide engine, everything sparser goes event-driven.
//! [`EngineChoice::pick_parallel`] extends the model with the worker
//! count: the wide engine's column blocks parallelise its `n × W` fill,
//! while the event-driven shards each repeat the bucket walk, so the
//! crossover shifts wide-ward as workers grow (pinned by
//! `parallel_dispatch_crossover_pins_the_worker_count`).

use crate::kernels::{
    self, emit, merge_dual_emitting, merge_into_emitting, AlignedLanes, AlignedSlab,
};
use crate::network::TemporalNetwork;
use crate::wide::{
    cache_block_count, EngineKind, FrontierEngine, SweepScratch, WideStats, WideSweeper,
    WIDE_CROSSOVER,
};
use crate::Time;
use ephemeral_graph::NodeId;
use ephemeral_parallel::faults::{self, CancelToken};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Range;

/// Average time-edges per occupied bucket, as a fraction of `n`, above
/// which the all-source entry points prefer the branch-free
/// [`WideSweeper`] over the event-driven
/// [`SparseSweeper`]: `M / occupied ≥ n / DENSE_BUCKET_DIVISOR` reads
/// "each visited bucket touches a constant fraction of the vertices", the
/// regime where the closure saturates within a few buckets and the wide
/// engine's early-exit dominates.
pub const DENSE_BUCKET_DIVISOR: usize = 16;

/// Time-edges per vertex above which the event-driven engine loses even
/// when the buckets are diffuse: past `M > SPARSE_EDGE_FACTOR · n` the
/// temporal reach sets grow towards `Θ(n)` (the static average degree is
/// high enough for a well-connected giant cluster), every reacher-list
/// merge streams a long list, and the wide engine's fixed `W`-word rows
/// win back. Near-threshold `G(n, p = c·ln n / n)` instances sit above
/// this bound; the genuinely sparse substrates (constant average degree,
/// stars, paths, tori, random regular graphs) sit below it.
pub const SPARSE_EDGE_FACTOR: usize = 3;

/// The density-aware engine dispatch used uniformly by the all-source
/// entry points (closure, distances, diameter, connectivity, `T_reach`,
/// metrics) and the Monte Carlo scratch loops.
#[derive(Debug, Clone, Copy)]
pub struct EngineChoice;

impl EngineChoice {
    /// Pick the engine for an `n`-vertex instance with
    /// `occupied_buckets` non-empty time buckets and `time_edges` labels:
    /// [`EngineKind::Batch`] below [`WIDE_CROSSOVER`] (the wide matrix is
    /// a few words per vertex there and the batched frontier wins
    /// regardless of density); above it [`EngineKind::Sparse`] only for
    /// genuinely sparse instances — diffuse buckets (average fill below
    /// `n /` [`DENSE_BUCKET_DIVISOR`]) *and* constant-ish average degree
    /// (at most [`SPARSE_EDGE_FACTOR`] time-edges per vertex, keeping the
    /// reacher lists short) — and [`EngineKind::Wide`] otherwise.
    ///
    /// ```
    /// use ephemeral_temporal::sparse::EngineChoice;
    /// use ephemeral_temporal::wide::EngineKind;
    ///
    /// // Small n: always batched.
    /// assert_eq!(EngineChoice::pick(64, 64, 2016), EngineKind::Batch);
    /// // Dense clique at a = n: every bucket floods a constant fraction.
    /// assert_eq!(EngineChoice::pick(4096, 4096, 16_773_120), EngineKind::Wide);
    /// // Near-threshold G(n, p = 1.5·ln n / n): diffuse buckets but high
    /// // degree — reach sets grow towards n, the wide engine keeps it.
    /// assert_eq!(EngineChoice::pick(4096, 4093, 25_562), EngineKind::Wide);
    /// // Sparse G(n, p) at average degree 4, lifetime 4n: event-driven.
    /// assert_eq!(EngineChoice::pick(4096, 6328, 8066), EngineKind::Sparse);
    /// ```
    #[must_use]
    pub const fn pick(n: usize, occupied_buckets: usize, time_edges: usize) -> EngineKind {
        Self::pick_parallel(n, occupied_buckets, time_edges, 1)
    }

    /// [`EngineChoice::pick`] with the available worker count folded into
    /// the cost model. The wide engine's dominant cost — streaming
    /// `M · ⌈n/64⌉` frontier words — splits across workers by column
    /// blocks with near-perfect efficiency (blocks never interact), so
    /// `w` workers divide its effective fill cost by `w`. The sparse
    /// engine's per-shard work is serial inside each shard: every shard
    /// pays its own agenda walk and bucket commits, and its merge costs
    /// shrink only mildly with narrower shards. The dense-fill threshold
    /// therefore drops by the worker count —
    /// `M ·` [`DENSE_BUCKET_DIVISOR`] `· w ≥ occupied · n` picks
    /// [`EngineKind::Wide`] — while the degree bound
    /// ([`SPARSE_EDGE_FACTOR`], a property of reach-set growth, not of
    /// parallelism) is unchanged. `workers = 0` is treated as 1.
    ///
    /// ```
    /// use ephemeral_temporal::sparse::EngineChoice;
    /// use ephemeral_temporal::wide::EngineKind;
    ///
    /// // A few-occupied-buckets instance right at the 8-worker
    /// // crossover: sequential dispatch keeps it event-driven, eight
    /// // workers make the wide engine's divided fill cheaper.
    /// assert_eq!(
    ///     EngineChoice::pick_parallel(1024, 256, 2048, 1),
    ///     EngineKind::Sparse
    /// );
    /// assert_eq!(
    ///     EngineChoice::pick_parallel(1024, 256, 2048, 8),
    ///     EngineKind::Wide
    /// );
    /// ```
    #[must_use]
    pub const fn pick_parallel(
        n: usize,
        occupied_buckets: usize,
        time_edges: usize,
        workers: usize,
    ) -> EngineKind {
        if n < WIDE_CROSSOVER {
            return EngineKind::Batch;
        }
        let occupied = if occupied_buckets == 0 {
            1
        } else {
            occupied_buckets
        };
        let workers = if workers == 0 { 1 } else { workers };
        if time_edges
            .saturating_mul(DENSE_BUCKET_DIVISOR)
            .saturating_mul(workers)
            >= occupied.saturating_mul(n)
            || time_edges > SPARSE_EDGE_FACTOR.saturating_mul(n)
        {
            EngineKind::Wide
        } else {
            EngineKind::Sparse
        }
    }

    /// [`EngineChoice::pick`] fed from a network's own counts
    /// (`num_nodes`, `occupied_times().len()`, `num_time_edges`).
    #[must_use]
    pub fn pick_for(tn: &TemporalNetwork) -> EngineKind {
        Self::pick_for_parallel(tn, 1)
    }

    /// [`EngineChoice::pick_parallel`] fed from a network's own counts.
    #[must_use]
    pub fn pick_for_parallel(tn: &TemporalNetwork, workers: usize) -> EngineKind {
        Self::pick_parallel(
            tn.num_nodes(),
            tn.occupied_times().len(),
            tn.num_time_edges(),
            workers,
        )
    }

    /// The one dispatch wrapper every full-width entry point shares.
    ///
    /// Above the batch crossover, runs `r` with the engine type
    /// [`EngineChoice::pick_for_parallel`] selects (the worker count is
    /// part of the cost model — see [`EngineChoice::pick_parallel`]) and
    /// that engine's column-shard count: the wide engine shards into
    /// `workers.max(cache_block_count(n))` blocks so its cache blocking
    /// engages regardless of worker count, the sparse engine only as far
    /// as the workers — each shard runs its own arena and agenda over
    /// the shared bucket index and visits only its causal cone. Below
    /// the crossover returns `None` and the caller runs its batched path
    /// — the 64-lane [`BatchSweeper`](crate::engine::BatchSweeper) is
    /// not a [`FrontierEngine`].
    ///
    /// Sequential scratch callers pass `workers = 1` (wide then shards to
    /// exactly its cache schedule, sparse to the single block `0..n`) and
    /// fetch their warm engine inside `run` via
    /// [`FrontierEngine::from_scratch`].
    pub fn dispatch<R: FrontierRun>(tn: &TemporalNetwork, workers: usize, r: R) -> Option<R::Out> {
        let n = tn.num_nodes();
        match Self::pick_for_parallel(tn, workers) {
            EngineKind::Wide => Some(r.run::<WideSweeper>(workers.max(cache_block_count(n)))),
            EngineKind::Sparse => Some(r.run::<SparseSweeper>(workers)),
            _ => None,
        }
    }
}

/// A full-width computation generic over the frontier engine: the body
/// that used to be copied into every `match EngineChoice::pick_for` arm,
/// written once. The closure, distance, diameter, connectivity,
/// `T_reach`, metrics and delta entry points each implement this with
/// their per-block work; [`EngineChoice::dispatch`] instantiates it with
/// the engine type and shard count the density dispatch selects.
pub trait FrontierRun {
    /// What the computation produces.
    type Out;

    /// Run through engine `S`, sharding the sources into `shards`
    /// word-aligned column blocks (see
    /// [`source_blocks`](crate::wide::source_blocks) /
    /// [`block_schedule`](crate::wide::block_schedule) /
    /// [`probe_blocks`](crate::wide::probe_blocks)).
    fn run<S: FrontierEngine>(self, shards: usize) -> Self::Out;
}

/// Sentinel for "this (edge, direction) has never propagated".
const NEVER_APPLIED: u64 = u64::MAX;

/// Default byte budget of the streaming closure's row-block cache
/// (see [`SparseSweeper::reach_word`]); override per sweeper with
/// [`SparseSweeper::set_closure_budget_bytes`]. 256 MiB holds the whole
/// closure up to `n ≈ 46k` and caps the resident footprint far below the
/// `n²/8`-byte matrix beyond it (125 GB at `n = 10⁶`).
pub const DEFAULT_CLOSURE_BUDGET_BYTES: usize = 256 << 20;

/// Vertices per materialised closure row block: 256 rows keep a block at
/// `2 KiB · ⌈lanes/64⌉` — big enough to amortise the list walk, small
/// enough that even one block stays modest at a million lanes.
const CLOSURE_BLOCK_ROWS: usize = 256;

/// Arena size, in words, below which compaction is never considered —
/// evacuating a few-KiB arena costs more than the cache pressure it
/// relieves. Tests lower it through
/// [`SparseSweeper::set_compaction_floor`] to force compaction cycles on
/// small instances.
const COMPACT_MIN_WORDS: usize = 1 << 15;

/// Garbage multiple that triggers evacuation: compact when the arena
/// exceeds this many times the summed live region lengths. Live lengths
/// count shared regions once per sharer, so the bound is conservative —
/// when it fires, at least `1 − 1/factor` of the arena is dead.
const COMPACT_GARBAGE_FACTOR: usize = 3;

/// One cached block of [`CLOSURE_BLOCK_ROWS`] materialised closure rows
/// (`block == u32::MAX` marks a slot invalidated by a new sweep; the
/// buffer is kept for warm reuse).
#[derive(Debug, Clone, Default)]
struct RowBlock {
    block: u32,
    /// LRU clock value at the last touch.
    tick: u64,
    words: AlignedSlab,
}

/// The arena is addressed by `u32` region offsets; growing past that is
/// astronomically far outside any dispatched workload (the arena holds
/// reached pairs), but a direct caller on an adversarial instance must
/// get a panic, not silently wrapped offsets.
#[inline]
fn arena_offset(arena: &[u32]) -> u32 {
    u32::try_from(arena.len()).expect("sparse arena exceeds u32 region offsets")
}

/// A vertex's frontier region: `arena[start .. start + len]`, one 8-byte
/// slot so an application touches a single metadata cache line per
/// endpoint. `u32` offsets bound the arena at 4 Gi entries — far beyond
/// any dispatched workload (the arena holds the reached pairs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Region {
    start: u32,
    len: u32,
}

// The merge inner loops — `kernels::merge_dual_emitting`,
// `kernels::merge_into_emitting` (branch-light, with a galloping path for
// skewed list sizes) and the word-grouped `kernels::emit` — live in
// [`crate::kernels`] with the rest of the hot word kernels, pinned
// bit-identical to scalar references there.

/// Reusable scratch state of the event-driven sparse-frontier sweep.
///
/// Construction is free; the first sweep sizes the per-vertex region
/// tables and the arena, and subsequent sweeps of same-shaped networks
/// reuse them, so a Monte Carlo loop that keeps one sweeper per worker
/// performs no per-trial allocation once warm (covered by
/// `ephemeral-core`'s allocation regression test).
///
/// ```
/// use ephemeral_graph::generators;
/// use ephemeral_temporal::sparse::SparseSweeper;
/// use ephemeral_temporal::wide::FrontierEngine;
/// use ephemeral_temporal::{LabelAssignment, TemporalNetwork, NEVER};
///
/// // 0—1 @1, 1—2 @2: all three sources answered in one pass.
/// let tn = TemporalNetwork::new(
///     generators::path(3),
///     LabelAssignment::from_vecs(vec![vec![1], vec![2]]).unwrap(),
///     2,
/// )
/// .unwrap();
/// let mut sweeper = SparseSweeper::new();
/// let mut arrivals = vec![NEVER; 3 * 3];
/// let stats = sweeper.arrivals_into(&tn, 0..3, 0, &mut arrivals);
/// assert_eq!(arrivals, vec![0, 1, 2, 1, 0, 2, NEVER, 2, 0]);
/// assert_eq!(stats.unreached_pairs(3), 1); // 2 never reaches 0
/// assert_eq!(stats.buckets_visited, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseSweeper {
    /// Append-only storage of the sorted lane lists in a 64-byte-aligned
    /// lane buffer; regions are immutable once written (updates append
    /// and re-point), which is what makes region sharing sound.
    arena: AlignedLanes,
    /// Per-vertex frontier region (`len == lanes` ⇔ saturated).
    meta: Vec<Region>,
    /// Pre-bucket region + version snapshots for conflicted buckets
    /// (valid where `stamp[v] == epoch`).
    snap_meta: Vec<Region>,
    snap_ver: Vec<u64>,
    /// Per-vertex change counter, bumped whenever the frontier grows.
    version: Vec<u64>,
    /// `version[src]` at the last application of each (edge, direction):
    /// slot `2e` for `u → v`, `2e + 1` for `v → u`. Unused (and never
    /// reset) under single-label assignments.
    edge_version: Vec<u64>,
    /// `stamp[v] == epoch` marks `v` as an endpoint already seen in the
    /// current bucket's conflict scan.
    stamp: Vec<u64>,
    /// Merge scratch: the union under construction.
    out_buf: Vec<u32>,
    /// Pending-bucket min-heap of occupied-window indices — the agenda of
    /// event-driven partial-source sweeps. Empty between sweeps.
    agenda: BinaryHeap<Reverse<u32>>,
    /// `sched[i] == sched_epoch` marks window bucket `i` as already
    /// scheduled (pending or processed) this sweep.
    sched: Vec<u64>,
    sched_epoch: u64,
    /// Pooled compaction scratch: the sorted unique live `(start, len)`
    /// keys, their evacuated starts, and the evacuation buffer (kept to
    /// ping-pong with `arena`).
    compact_keys: Vec<(u32, u32)>,
    compact_starts: Vec<u32>,
    compact_buf: AlignedLanes,
    /// Arena words below which compaction is never considered
    /// (`0` = the `COMPACT_MIN_WORDS` default).
    compact_floor: usize,
    /// Lifetime arena high-water mark (words) across every sweep.
    arena_hiwater: usize,
    /// Monotone count of degradation events (forced budget compactions +
    /// closure block shrinks) across this sweeper's lifetime — the
    /// delta-foldable counterpart of the per-sweep [`WideStats::degraded`].
    degraded_total: u64,
    /// Lifetime compaction count across every sweep.
    compactions_total: u64,
    /// Streaming-closure row-block cache (see
    /// [`SparseSweeper::reach_word`]), LRU under `closure_budget` bytes.
    cache: Vec<RowBlock>,
    cache_tick: u64,
    /// Row-block cache byte budget
    /// (`0` = [`DEFAULT_CLOSURE_BUDGET_BYTES`]).
    closure_budget: usize,
    /// Pooled row buffer of [`SparseSweeper::for_each_reach_row`].
    row_buf: AlignedSlab,
    /// Words per row of the most recent sweep.
    width: usize,
    /// Vertices of the most recent sweep.
    n: usize,
    /// Vertices per closure row block of the most recent sweep —
    /// [`CLOSURE_BLOCK_ROWS`] unless the byte budget forced a shrink
    /// (the degradation path; see [`WideStats::degraded`]).
    block_rows: usize,
    /// Arena word budget (`0` = unlimited): exceeding it between buckets
    /// forces a compaction instead of growing on — the degradation path
    /// for memory pressure under relabel churn.
    arena_budget_words: usize,
    /// Cooperative cancellation token checked at every bucket boundary
    /// (`None` = never fires).
    cancel: Option<CancelToken>,
}

impl SparseSweeper {
    /// A sweeper with empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Words per frontier row of the most recent sweep (`⌈lanes/64⌉`).
    #[must_use]
    pub const fn words_per_row(&self) -> usize {
        self.width
    }

    /// Word `w` of the closure row of `v` after the most recent sweep:
    /// bit `i` set iff source `sources.start + 64w + i` reached `v`
    /// (sources count themselves). This is the **streaming closure**:
    /// rows are materialised from the reacher lists per block of
    /// `CLOSURE_BLOCK_ROWS` vertices, on demand, into an LRU cache
    /// bounded by the [`SparseSweeper::set_closure_budget_bytes`] byte
    /// budget — consumers that walk rows in order pay `O(reached bits)`
    /// list work in total and never hold more than the budget resident,
    /// whatever `n` is. Stats-only sweeps never materialise anything;
    /// whole-closure visitors should prefer
    /// [`SparseSweeper::for_each_reach_row`], which streams through one
    /// row buffer and skips the cache entirely.
    ///
    /// # Panics
    /// If `v` or `w` is out of range for the last swept network.
    #[must_use]
    pub fn reach_word(&mut self, v: NodeId, w: usize) -> u64 {
        assert!(w < self.width, "word {w} out of range");
        let vi = v as usize;
        assert!(vi < self.n, "vertex {v} out of range");
        let b = (vi / self.block_rows) as u32;
        let slot = match self.cache.iter().position(|s| s.block == b) {
            Some(i) => i,
            None => self.materialise_block(b),
        };
        self.cache_tick += 1;
        self.cache[slot].tick = self.cache_tick;
        self.cache[slot].words.words()[(vi % self.block_rows) * self.width + w]
    }

    /// Fill the closure row block `b` from the reacher lists into a free
    /// (or LRU-evicted) cache slot under the byte budget; returns the
    /// slot index. At least one slot is always kept, so a single
    /// `reach_word` probe works under any budget.
    fn materialise_block(&mut self, b: u32) -> usize {
        let budget = if self.closure_budget == 0 {
            DEFAULT_CLOSURE_BUDGET_BYTES
        } else {
            self.closure_budget
        };
        let block_rows = self.block_rows.max(1);
        let block_bytes = block_rows * self.width * 8;
        let max_slots = (budget / block_bytes.max(1)).max(1);
        self.cache.truncate(max_slots);
        let slot = if self.cache.len() < max_slots {
            self.cache.push(RowBlock::default());
            self.cache.len() - 1
        } else {
            let mut lru = 0;
            for (i, s) in self.cache.iter().enumerate() {
                if s.tick < self.cache[lru].tick {
                    lru = i;
                }
            }
            lru
        };
        let lo = b as usize * block_rows;
        let hi = (lo + block_rows).min(self.n);
        let width = self.width;
        let Self {
            cache, meta, arena, ..
        } = self;
        let s = &mut cache[slot];
        s.block = b;
        s.words.resize_zeroed(block_rows * width);
        let words = s.words.words_mut();
        for (i, m) in meta[lo..hi].iter().enumerate() {
            let st = m.start as usize;
            let row = i * width;
            kernels::set_lane_bits(
                &mut words[row..row + width],
                &arena[st..st + m.len as usize],
            );
        }
        slot
    }

    /// Visit the closure row of every vertex of the most recent sweep in
    /// ascending vertex order, streaming each row out of the reacher
    /// lists through one pooled `words_per_row`-sized buffer — set words
    /// are written before and cleared after each visit, so a whole-
    /// closure pass costs `O(n + reached bits)` with `O(⌈lanes/64⌉)`
    /// resident memory: no matrix, no cache. A no-op when the last sweep
    /// carried no lanes (matching the wide engine).
    pub fn for_each_reach_row(&mut self, mut f: impl FnMut(NodeId, &[u64])) {
        let width = self.width;
        let n = self.n;
        if width == 0 {
            return;
        }
        let Self {
            row_buf,
            meta,
            arena,
            ..
        } = self;
        row_buf.resize_zeroed(width);
        let row = row_buf.words_mut();
        for (x, m) in meta[..n].iter().enumerate() {
            let st = m.start as usize;
            let list = &arena[st..st + m.len as usize];
            kernels::set_lane_bits(row, list);
            f(x as NodeId, row);
            kernels::clear_lane_bits(row, list);
        }
    }

    /// Cap the streaming closure's row-block cache at `bytes`
    /// (`0` restores [`DEFAULT_CLOSURE_BUDGET_BYTES`]). Takes effect on
    /// the next cache miss; at least one block is always kept.
    pub fn set_closure_budget_bytes(&mut self, bytes: usize) {
        self.closure_budget = bytes;
    }

    /// Override the arena size, in words, below which compaction is
    /// never considered (`0` restores the `COMPACT_MIN_WORDS` built-in
    /// floor). Tests lower it to force compaction cycles on small
    /// instances.
    pub fn set_compaction_floor(&mut self, words: usize) {
        self.compact_floor = words;
    }

    /// Cap the region arena at `words` `u32` entries (`0` = unlimited).
    /// Exceeding the cap between buckets forces an evacuation regardless
    /// of the garbage factor — the sweep degrades (more compaction work,
    /// counted in [`WideStats::degraded`]) instead of aborting under
    /// memory pressure. Arrival times are unaffected: compaction never
    /// changes region contents, only their placement.
    pub fn set_arena_budget_words(&mut self, words: usize) {
        self.arena_budget_words = words;
    }

    /// Arm (or clear) the cooperative cancellation token checked at every
    /// bucket boundary of subsequent sweeps — the sweep grid's per-cell
    /// watchdog (`--cell-timeout`) installs the cell's token here.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Lifetime arena high-water mark, in words, across every sweep this
    /// sweeper ran (monotone; per-sweep values are on the returned
    /// [`WideStats::arena_hiwater_words`]).
    #[must_use]
    pub const fn arena_hiwater_words(&self) -> usize {
        self.arena_hiwater
    }

    /// Lifetime compaction count across every sweep this sweeper ran
    /// (monotone; per-sweep counts are on the returned
    /// [`WideStats::compactions`]).
    #[must_use]
    pub const fn compactions_total(&self) -> u64 {
        self.compactions_total
    }

    /// Monotone degradation-event count across this sweeper's lifetime
    /// (forced compactions under [`SparseSweeper::set_arena_budget_words`]
    /// plus closure row-block shrinks under the byte budget). Fold by
    /// per-trial delta, like [`SparseSweeper::compactions_total`].
    #[must_use]
    pub const fn degraded_total(&self) -> u64 {
        self.degraded_total
    }

    /// One event-driven sweep from the contiguous source range `sources`
    /// (lane `i` ↔ vertex `sources.start + i`), using labels strictly
    /// greater than `start_time`. `on_reach(v, w, fresh, t)` fires with
    /// the lanes of word `w` that first reached `v` at time `t`, in
    /// non-decreasing order of `t` — the wide engine's callback contract.
    ///
    /// # Panics
    /// If any source is out of range.
    pub fn sweep(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        on_reach: impl FnMut(NodeId, usize, u64, Time),
    ) -> WideStats {
        self.sweep_with_horizon(tn, sources, start_time, tn.lifetime(), on_reach)
    }

    /// [`SparseSweeper::sweep`] ignoring every label greater than
    /// `horizon` (matching `foremost_with_horizon` lane for lane).
    ///
    /// All-source sweeps walk the occupied window linearly (every bucket
    /// is causally reachable from *some* source, and the linear walk is
    /// what the stats contract pins). Partial-source sweeps — the shards
    /// of a parallel closure, the probe blocks — run **event-driven off
    /// an agenda**: a bucket enters the pending min-heap only when some
    /// vertex with an incident label in that bucket has grown, so a
    /// shard visits exactly its causal cone instead of re-paying the
    /// whole occupied walk per shard. Arrival times are bit-identical
    /// either way; only `buckets_visited` (the work observable) shrinks.
    ///
    /// # Panics
    /// If any source is out of range.
    #[allow(clippy::too_many_lines)]
    pub fn sweep_with_horizon(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        horizon: Time,
        mut on_reach: impl FnMut(NodeId, usize, u64, Time),
    ) -> WideStats {
        let n = tn.num_nodes();
        let lanes = sources.len();
        let width = lanes.div_ceil(64);
        self.width = width;
        self.n = n;
        // A new sweep invalidates the streaming-closure cache (buffers
        // are kept for warm reuse; tick 0 makes stale slots evict first).
        for s in &mut self.cache {
            s.block = u32::MAX;
            s.tick = 0;
        }
        // Degradation, not abortion: if even one closure row block of
        // the default shape would blow the byte budget, halve the rows
        // per block until a block fits (floor 1 row). Smaller blocks
        // amortise the list walk worse — a cost, counted once on this
        // sweep's stats — but the cache stays inside its budget.
        let closure_budget = if self.closure_budget == 0 {
            DEFAULT_CLOSURE_BUDGET_BYTES
        } else {
            self.closure_budget
        };
        self.block_rows = CLOSURE_BLOCK_ROWS;
        while self.block_rows > 1 && self.block_rows * width * 8 > closure_budget {
            self.block_rows /= 2;
        }
        let mut degraded = usize::from(self.block_rows < CLOSURE_BLOCK_ROWS);
        self.arena.clear();
        // Warm headroom: same-shaped redraws produce arenas of similar
        // size, so carrying the previous high-water (plus the seeds)
        // keeps warm trials allocation-free.
        self.arena.reserve(lanes);
        self.meta.clear();
        self.meta.resize(n, Region::default());
        self.snap_meta.clear();
        self.snap_meta.resize(n, Region::default());
        // The version counters exist only to feed the relabel memo;
        // under single-label assignments both they and the memo are idle
        // and skip their O(n)/O(m) resets and per-application traffic.
        let use_memo = tn.num_time_edges() > tn.graph().num_edges();
        self.snap_ver.clear();
        self.version.clear();
        if use_memo {
            self.snap_ver.resize(n, 0);
            self.version.resize(n, 0);
        }
        self.stamp.clear();
        self.stamp.resize(n, 0);
        self.out_buf.clear();
        self.out_buf.reserve(lanes);
        self.edge_version.clear();
        if use_memo {
            self.edge_version
                .resize(2 * tn.graph().num_edges(), NEVER_APPLIED);
        }
        for (lane, s) in sources.clone().enumerate() {
            assert!((s as usize) < n, "source {s} out of range");
            self.meta[s as usize] = Region {
                start: arena_offset(&self.arena),
                len: 1,
            };
            self.arena.push(lane as u32);
        }
        let target = lanes * n;
        let lane_count = lanes as u32;
        let mut reached = lanes;
        let mut last_arrival: Time = 0;
        let mut buckets_visited = 0usize;
        let mut epoch = 0u64;
        let directed = tn.graph().is_directed();
        let window = tn.occupied_between(start_time, horizon);
        // Partial-source sweeps run event-driven off the agenda; the
        // all-source sweep keeps the linear occupied walk (every bucket
        // would be scheduled anyway, and the linear order is what the
        // cross-engine stats contract pins).
        let event_driven = lanes < n;
        self.sched_epoch += 1;
        let sepoch = self.sched_epoch;
        if event_driven {
            self.agenda.clear();
            if self.sched.len() < window.len() {
                self.sched.resize(window.len(), 0);
            }
        }
        let floor = if self.compact_floor == 0 {
            COMPACT_MIN_WORDS
        } else {
            self.compact_floor
        };
        let mut compact_check = floor.max(2 * self.arena.len());
        let mut hiwater = self.arena.len();
        let mut compactions = 0usize;
        let budget = self.arena_budget_words;
        let mut budget_check = budget;
        let cancel = self.cancel.clone();
        let Self {
            arena,
            meta,
            snap_meta,
            snap_ver,
            version,
            edge_version,
            stamp,
            out_buf,
            agenda,
            sched,
            compact_keys,
            compact_starts,
            compact_buf,
            ..
        } = self;
        if event_driven {
            for s in sources.clone() {
                schedule_incident(tn, s, start_time, horizon, window, sched, sepoch, agenda);
            }
        }
        let mut cursor = 0usize;
        loop {
            if reached >= target {
                break; // saturated: no later bucket can set a fresh bit
            }
            let t = if event_driven {
                match agenda.pop() {
                    // Pushes are always for strictly later buckets, so
                    // pops come out in strictly ascending time order —
                    // the bucket semantics of the linear walk.
                    Some(Reverse(i)) => window[i as usize],
                    None => break, // agenda dry: nothing pending can grow
                }
            } else if let Some(&t) = window.get(cursor) {
                cursor += 1;
                t
            } else {
                break;
            };
            faults::hit(faults::site::ENGINE_BUCKET, u64::from(t));
            if let Some(c) = &cancel {
                c.checkpoint();
            }
            buckets_visited += 1;
            let edges = tn.edges_at(t);
            // Conflict scan: sparse buckets almost never carry two edges
            // sharing an endpoint. Endpoint-disjoint buckets commit in
            // place edge by edge (each edge's reads and writes touch rows
            // no other edge of the bucket touches). A conflicted bucket
            // snapshots every endpoint's region first; sources then read
            // the snapshot while targets merge live — the frozen-`before`
            // discipline of the scalar sweep, list-shaped. Single-edge
            // buckets (the common case at sparse fill) skip the scan.
            epoch += 1;
            let mut conflict = false;
            if edges.len() > 1 {
                for &e in edges {
                    let (u, v) = tn.graph().endpoints(e);
                    for w in [u, v] {
                        let wi = w as usize;
                        if stamp[wi] == epoch {
                            conflict = true;
                        } else {
                            stamp[wi] = epoch;
                            snap_meta[wi] = meta[wi];
                            if use_memo {
                                snap_ver[wi] = version[wi];
                            }
                        }
                    }
                }
            }
            let mut bucket_fresh = 0usize;
            for &e in edges {
                let (u, v) = tn.graph().endpoints(e);
                if u == v {
                    continue; // a self-loop can never extend a journey
                }
                let (ui, vi) = (u as usize, v as usize);
                // Frozen sources: live regions in a disjoint bucket, the
                // pre-bucket snapshot in a conflicted one.
                let mu = if conflict { snap_meta[ui] } else { meta[ui] };
                let mv = if conflict { snap_meta[vi] } else { meta[vi] };
                let (su, sul) = (mu.start as usize, mu.len as usize);
                let (sv, svl) = (mv.start as usize, mv.len as usize);
                // The event-driven short-circuits, all one-word checks: a
                // direction is dead when its (frozen) source is empty,
                // its target is saturated, or its source has not changed
                // since this arc last propagated (a relabel).
                let fwd = sul != 0
                    && meta[vi].len != lane_count
                    && (!use_memo || edge_version[2 * e as usize] != version[ui]);
                let bwd = !directed
                    && svl != 0
                    && meta[ui].len != lane_count
                    && (!use_memo || edge_version[2 * e as usize + 1] != version[vi]);
                if !fwd && !bwd {
                    continue;
                }
                let mut fresh_u = 0u32;
                let mut fresh_v = 0u32;
                if fwd && bwd && !conflict {
                    // Undirected exchange in a disjoint bucket: both rows
                    // become the union, so they can *share* one region.
                    if su == sv && sul == svl {
                        // Identical shared region: nothing can flow.
                    } else if sul == 1 && svl == 1 {
                        // Singleton exchange — the dominant early shape.
                        let a = arena[su];
                        let b = arena[sv];
                        if a != b {
                            let out = arena_offset(arena);
                            arena.push(a.min(b));
                            arena.push(a.max(b));
                            meta[ui] = Region { start: out, len: 2 };
                            meta[vi] = Region { start: out, len: 2 };
                            fresh_u = 1;
                            fresh_v = 1;
                            on_reach(u, (b / 64) as usize, 1u64 << (b % 64), t);
                            on_reach(v, (a / 64) as usize, 1u64 << (a % 64), t);
                        }
                    } else {
                        let (fu, fv) = merge_dual_emitting(
                            &arena[su..su + sul],
                            &arena[sv..sv + svl],
                            out_buf,
                            u,
                            v,
                            t,
                            &mut on_reach,
                        );
                        fresh_u = fu;
                        fresh_v = fv;
                        if fresh_u == 0 && fresh_v == 0 {
                            // Equal content in different regions:
                            // canonicalise so the next meeting is O(1).
                            meta[ui] = mv;
                        } else {
                            let out = arena_offset(arena);
                            arena.extend_from_slice(out_buf);
                            let r = Region {
                                start: out,
                                len: out_buf.len() as u32,
                            };
                            meta[ui] = r;
                            meta[vi] = r;
                        }
                    }
                } else {
                    // Single directions (directed edges, one-sided
                    // eligibility, or a conflicted bucket, where the two
                    // directions must not share a region because later
                    // edges may grow either side independently).
                    if fwd {
                        fresh_v = propagate(arena, meta, out_buf, su, sul, vi, t, v, &mut on_reach);
                    }
                    if bwd {
                        fresh_u = propagate(arena, meta, out_buf, sv, svl, ui, t, u, &mut on_reach);
                    }
                }
                if use_memo {
                    if fresh_v > 0 {
                        version[vi] += 1;
                    }
                    if fresh_u > 0 {
                        version[ui] += 1;
                    }
                }
                // Record the memo *after* the bumps: whatever this
                // application moved, each target now contains everything
                // its frozen source held. In a conflicted bucket the
                // frozen content is the *snapshot*, and the source may
                // have grown since (as a target of another edge this
                // bucket) — the memo must record the snapshot's version,
                // or a later relabel would wrongly skip the newer bits.
                if use_memo {
                    if fwd {
                        edge_version[2 * e as usize] =
                            if conflict { snap_ver[ui] } else { version[ui] };
                    }
                    if bwd {
                        edge_version[2 * e as usize + 1] =
                            if conflict { snap_ver[vi] } else { version[vi] };
                    }
                }
                if event_driven {
                    // Fresh growth arms every strictly later incident
                    // label of the grown endpoint.
                    if fresh_u > 0 {
                        schedule_incident(tn, u, t, horizon, window, sched, sepoch, agenda);
                    }
                    if fresh_v > 0 {
                        schedule_incident(tn, v, t, horizon, window, sched, sepoch, agenda);
                    }
                }
                bucket_fresh += (fresh_u + fresh_v) as usize;
            }
            if bucket_fresh > 0 {
                reached += bucket_fresh;
                last_arrival = t;
            }
            // Between buckets no snapshot or frozen source region is
            // live, so the arena can be evacuated. Checks are spaced
            // geometrically (the live scan is O(n)); an evacuation runs
            // only once the garbage bound is met.
            if arena.len() >= compact_check {
                if arena.len() > hiwater {
                    hiwater = arena.len();
                }
                let live: usize = meta.iter().map(|m| m.len as usize).sum();
                if arena.len() > live.saturating_mul(COMPACT_GARBAGE_FACTOR) {
                    compact_arena(arena, meta, compact_keys, compact_starts, compact_buf);
                    compactions += 1;
                }
                compact_check = (2 * arena.len()).max(floor);
            }
            // Forced evacuation under the arena word budget: between
            // buckets no region is borrowed, so when the budget is
            // exceeded compact regardless of the garbage factor and
            // account the event as degradation. Geometric back-off
            // (+25%) bounds the re-check cost when even the live set
            // exceeds the budget (the sweep then runs over budget —
            // degraded, but it completes).
            if budget != 0 && arena.len() > budget_check {
                if arena.len() > hiwater {
                    hiwater = arena.len();
                }
                let live: usize = meta.iter().map(|m| m.len as usize).sum();
                if arena.len() > live {
                    compact_arena(arena, meta, compact_keys, compact_starts, compact_buf);
                    compactions += 1;
                    degraded += 1;
                }
                budget_check = (arena.len() + arena.len() / 4).max(budget);
            }
        }
        if arena.len() > hiwater {
            hiwater = arena.len();
        }
        self.arena_hiwater = self.arena_hiwater.max(hiwater);
        self.compactions_total += compactions as u64;
        self.degraded_total += degraded as u64;
        WideStats {
            lanes,
            reached_bits: reached,
            last_arrival,
            buckets_visited,
            arena_hiwater_words: hiwater,
            compactions,
            degraded,
        }
    }

    /// Sweep and record per-pair arrival times into `out`, laid out
    /// `out[lane · n + v] = δ(sources.start + lane, v)` with [`NEVER`](crate::NEVER)
    /// marking unreachable pairs and each source reporting its own
    /// `start_time` — lane for lane the `arrivals()` array of a scalar
    /// foremost run.
    ///
    /// # Panics
    /// If `out.len() != sources.len() · n`, or as [`SparseSweeper::sweep`].
    pub fn arrivals_into(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        out: &mut [Time],
    ) -> WideStats {
        FrontierEngine::arrivals_into(self, tn, sources, start_time, out)
    }
}

/// One direction of an application: merge the frozen source region
/// `arena[su..su + sul]` into the live list of `dst`, re-pointing `dst`
/// at the union and emitting the fresh lanes. Returns the number of
/// fresh bits. An empty target adopts the source's region outright —
/// `O(1)`, no copy (regions are immutable).
#[allow(clippy::too_many_arguments)]
#[inline]
fn propagate(
    arena: &mut AlignedLanes,
    meta: &mut [Region],
    out_buf: &mut Vec<u32>,
    su: usize,
    sul: usize,
    dst: usize,
    t: Time,
    dst_id: NodeId,
    on_reach: &mut impl FnMut(NodeId, usize, u64, Time),
) -> u32 {
    let md = meta[dst];
    let (sd, dl) = (md.start as usize, md.len as usize);
    if dl == 0 {
        meta[dst] = Region {
            start: su as u32,
            len: sul as u32,
        };
        emit(&arena[su..su + sul], dst_id, t, on_reach);
        return sul as u32;
    }
    if sd == su && dl == sul {
        return 0; // identical shared region
    }
    let fresh = {
        let (d, src) = (&arena[sd..sd + dl], &arena[su..su + sul]);
        merge_into_emitting(d, src, out_buf, dst_id, t, on_reach)
    };
    if fresh > 0 {
        let out = arena_offset(arena);
        arena.extend_from_slice(out_buf);
        meta[dst] = Region {
            start: out,
            len: out_buf.len() as u32,
        };
    }
    fresh
}

/// Arm every bucket that a growth of `v` at time `after` could feed:
/// each incident label of `v` in `(after, horizon]` maps (two binary
/// searches — per-edge labels and the occupied window are both sorted)
/// to its window index and enters the pending agenda once per sweep
/// (the `sched` stamps dedup). Completeness: a propagation `u → v` at
/// label `ℓ` needs `u` non-empty strictly before `ℓ`, i.e. `u` grew at
/// some `t' < ℓ` — and that growth armed every incident label `> t'`,
/// `ℓ` included. No bucket that could set a fresh bit is ever skipped;
/// the skipped ones are provably fruitless.
#[allow(clippy::too_many_arguments)]
#[inline]
fn schedule_incident(
    tn: &TemporalNetwork,
    v: NodeId,
    after: Time,
    horizon: Time,
    window: &[Time],
    sched: &mut [u64],
    epoch: u64,
    agenda: &mut BinaryHeap<Reverse<u32>>,
) {
    let (_, edge_ids) = tn.graph().out_adjacency(v);
    for &e in edge_ids {
        let labels = tn.labels(e);
        let from = labels.partition_point(|&l| l <= after);
        for &l in &labels[from..] {
            if l > horizon {
                break;
            }
            // Every label in (after, horizon] is an occupied time of
            // the window, so the search always lands on it.
            let i = window.partition_point(|&x| x < l);
            debug_assert!(i < window.len() && window[i] == l);
            if sched[i] != epoch {
                sched[i] = epoch;
                agenda.push(Reverse(i as u32));
            }
        }
    }
}

/// Evacuate the arena: copy each **unique** live region into `buf` in
/// ascending old-start order, re-point every non-empty vertex at its
/// evacuated copy by binary search on the exact `(start, len)` key, and
/// swap `buf` in as the new arena. Distinct live regions never overlap
/// (appends only ever write whole regions and re-points copy whole
/// region descriptors), so keying by `(start, len)` both preserves
/// sharing — all sharers land on the same evacuated copy — and keeps
/// each sorted list's layout verbatim. Every scratch vector is pooled
/// by the caller (`buf` ping-pongs with the arena), so warm compaction
/// cycles allocate nothing.
fn compact_arena(
    arena: &mut AlignedLanes,
    meta: &mut [Region],
    keys: &mut Vec<(u32, u32)>,
    starts: &mut Vec<u32>,
    buf: &mut AlignedLanes,
) {
    keys.clear();
    for m in meta.iter() {
        if m.len > 0 {
            keys.push((m.start, m.len));
        }
    }
    keys.sort_unstable();
    keys.dedup();
    starts.clear();
    buf.clear();
    for &(s, l) in keys.iter() {
        starts.push(buf.len() as u32);
        buf.extend_from_slice(&arena[s as usize..(s + l) as usize]);
    }
    for m in meta.iter_mut() {
        if m.len > 0 {
            let i = keys
                .binary_search(&(m.start, m.len))
                .expect("live region must be keyed");
            m.start = starts[i];
        }
    }
    std::mem::swap(arena, buf);
}

impl FrontierEngine for SparseSweeper {
    fn sweep_with_horizon(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        horizon: Time,
        on_reach: impl FnMut(NodeId, usize, u64, Time),
    ) -> WideStats {
        Self::sweep_with_horizon(self, tn, sources, start_time, horizon, on_reach)
    }

    fn reach_word(&mut self, v: NodeId, w: usize) -> u64 {
        Self::reach_word(self, v, w)
    }

    fn for_each_reach_row(&mut self, f: impl FnMut(NodeId, &[u64])) {
        Self::for_each_reach_row(self, f);
    }

    fn words_per_row(&self) -> usize {
        Self::words_per_row(self)
    }

    fn kind() -> EngineKind {
        EngineKind::Sparse
    }

    fn from_scratch(scratch: &mut SweepScratch) -> &mut Self {
        &mut scratch.sparse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foremost::{foremost, foremost_with_horizon};
    use crate::wide::WideSweeper;
    use crate::{LabelAssignment, NEVER};
    use ephemeral_graph::{generators, GraphBuilder};
    use ephemeral_rng::{RandomSource, SeedSequence};

    fn random_network(seed: u64, n: usize, directed: bool, lifetime: Time) -> TemporalNetwork {
        let mut rng = SeedSequence::new(seed).rng(0);
        let g = generators::gnp(n, 0.12, directed, &mut rng);
        let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
            vec![rng.range_u32(1, lifetime), rng.range_u32(1, lifetime)]
        })
        .unwrap();
        TemporalNetwork::new(g, labels, lifetime).unwrap()
    }

    fn scalar_arrivals(tn: &TemporalNetwork, start: Time) -> Vec<Time> {
        let n = tn.num_nodes();
        let mut out = Vec::with_capacity(n * n);
        for s in 0..n as NodeId {
            out.extend_from_slice(foremost(tn, s, start).arrivals());
        }
        out
    }

    #[test]
    fn sparse_matches_scalar_on_a_path() {
        let g = generators::path(4);
        let labels = LabelAssignment::from_vecs(vec![vec![1], vec![2], vec![3]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 3).unwrap();
        let mut out = vec![0; 16];
        let stats = SparseSweeper::new().arrivals_into(&tn, 0..4, 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, 0));
        assert_eq!(stats.lanes, 4);
        assert_eq!(stats.last_arrival, 3);
        assert_eq!(stats.buckets_visited, 3);
    }

    #[test]
    fn arena_budget_forces_compactions_and_counts_degradation() {
        let n = 70usize;
        let tn = random_network(5, n, false, n as Time);
        let mut clean = SparseSweeper::new();
        let mut base_out = vec![0; n * n];
        let base = clean.arrivals_into(&tn, 0..n as NodeId, 0, &mut base_out);
        assert_eq!(base.degraded, 0, "unbudgeted sweeps never degrade");

        // A word budget far below the churn high-water mark: the sweep
        // must complete with identical arrivals, trading extra forced
        // compactions — each counted as a degradation event — for the
        // smaller footprint.
        let mut tight = SparseSweeper::new();
        tight.set_arena_budget_words(256);
        let mut out = vec![0; n * n];
        let stats = tight.arrivals_into(&tn, 0..n as NodeId, 0, &mut out);
        assert_eq!(out, base_out, "degradation must not change arrivals");
        assert!(
            stats.degraded > 0,
            "a {}-word budget under hiwater {} must force compactions",
            256,
            base.arena_hiwater_words
        );
        assert!(stats.compactions >= stats.degraded);
        assert_eq!(tight.degraded_total(), stats.degraded as u64);

        // The budgeted sweeper is not poisoned: lifting the budget
        // reproduces the clean sweep byte for byte, degradation-free.
        tight.set_arena_budget_words(0);
        let mut again = vec![0; n * n];
        let relaxed = tight.arrivals_into(&tn, 0..n as NodeId, 0, &mut again);
        assert_eq!(again, base_out);
        assert_eq!(relaxed.degraded, 0);
    }

    #[test]
    fn closure_byte_budget_shrinks_row_blocks_instead_of_aborting() {
        let n = 70usize;
        let tn = random_network(6, n, false, n as Time);
        let mut reference = SparseSweeper::new();
        reference.sweep(&tn, 0..n as NodeId, 0, |_, _, _, _| {});
        let want: Vec<u64> = (0..n as NodeId)
            .map(|v| reference.reach_word(v, 0))
            .collect();

        // A byte budget below one default-shape block: the sweep shrinks
        // the rows-per-block geometry (one degradation event) and every
        // closure query must still read the same bits.
        let mut tiny = SparseSweeper::new();
        tiny.set_closure_budget_bytes(64);
        let stats = tiny.sweep(&tn, 0..n as NodeId, 0, |_, _, _, _| {});
        assert_eq!(stats.degraded, 1, "one shrink event per sweep");
        let got: Vec<u64> = (0..n as NodeId).map(|v| tiny.reach_word(v, 0)).collect();
        assert_eq!(
            got, want,
            "shrunken blocks must read identical closure bits"
        );
    }

    #[test]
    fn sparse_matches_scalar_on_random_networks() {
        // 70 and 130 vertices: 2- and 3-word rows, ragged last word.
        for &n in &[70usize, 130] {
            for directed in [false, true] {
                let tn = random_network(3, n, directed, n as Time);
                let mut out = vec![0; n * n];
                SparseSweeper::new().arrivals_into(&tn, 0..n as NodeId, 0, &mut out);
                assert_eq!(out, scalar_arrivals(&tn, 0), "n {n} directed {directed}");
            }
        }
    }

    #[test]
    fn multi_label_edges_exercise_the_version_memo() {
        // Many labels per edge on a small graph: the same arc relabels
        // again and again, the exact shape the version memo short-circuits
        // — and the arrivals must still equal the scalar oracle.
        let mut rng = SeedSequence::new(9).rng(4);
        let g = generators::gnp(40, 0.2, false, &mut rng);
        let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
            (0..12).map(|_| rng.range_u32(1, 200)).collect()
        })
        .unwrap();
        let tn = TemporalNetwork::new(g, labels, 200).unwrap();
        let mut out = vec![0; 40 * 40];
        SparseSweeper::new().arrivals_into(&tn, 0..40, 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, 0));
    }

    #[test]
    fn dense_conflicted_buckets_match_scalar() {
        // Few buckets, many edges per bucket: shared endpoints everywhere,
        // so the snapshot slow path carries the sweep.
        let mut rng = SeedSequence::new(31).rng(7);
        let g = generators::gnp(50, 0.3, false, &mut rng);
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, 5)]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 5).unwrap();
        let mut out = vec![0; 50 * 50];
        SparseSweeper::new().arrivals_into(&tn, 0..50, 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, 0));
    }

    #[test]
    fn nonzero_start_time_matches_scalar() {
        let tn = random_network(5, 40, false, 40);
        for start in [1, 5, 39] {
            let mut out = vec![0; 40 * 40];
            SparseSweeper::new().arrivals_into(&tn, 0..40, start, &mut out);
            assert_eq!(out, scalar_arrivals(&tn, start), "start {start}");
        }
    }

    #[test]
    fn horizon_matches_scalar_horizon() {
        let tn = random_network(7, 30, false, 30);
        let horizon = 7;
        let mut got = vec![NEVER; 30 * 30];
        for s in 0..30 {
            got[s * 30 + s] = 0;
        }
        SparseSweeper::new().sweep_with_horizon(&tn, 0..30, 0, horizon, |v, w, mut fresh, t| {
            while fresh != 0 {
                let lane = w * 64 + fresh.trailing_zeros() as usize;
                got[lane * 30 + v as usize] = t;
                fresh &= fresh - 1;
            }
        });
        let mut expected = Vec::new();
        for s in 0..30 {
            expected.extend_from_slice(foremost_with_horizon(&tn, s, 0, horizon).arrivals());
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn saturation_early_exit_is_kept() {
        let g = generators::clique(8, false);
        let m = g.num_edges();
        let labels = LabelAssignment::from_vecs(vec![(1..=50).collect(); m]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 50).unwrap();
        let mut sweeper = SparseSweeper::new();
        let stats = sweeper.sweep(&tn, 0..8, 0, |_, _, _, _| {});
        assert!(stats.all_reached(8));
        assert_eq!(stats.buckets_visited, 1, "saturated after the first bucket");
        assert_eq!(stats.last_arrival, 1);
    }

    #[test]
    fn empty_buckets_are_skipped() {
        let g = generators::path(3);
        let labels = LabelAssignment::from_vecs(vec![vec![10], vec![20]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 1000).unwrap();
        let mut sweeper = SparseSweeper::new();
        let mut out = vec![0; 9];
        let stats = sweeper.arrivals_into(&tn, 0..3, 0, &mut out);
        assert_eq!(stats.buckets_visited, 2);
        assert_eq!(out, scalar_arrivals(&tn, 0));
    }

    #[test]
    fn stats_match_the_wide_engine() {
        for seed in [1u64, 2, 3] {
            let tn = random_network(seed, 90, seed == 2, 300);
            let mut wide = WideSweeper::new();
            let ws = wide.sweep(&tn, 0..90, 0, |_, _, _, _| {});
            let mut sparse = SparseSweeper::new();
            let ss = sparse.sweep(&tn, 0..90, 0, |_, _, _, _| {});
            assert_eq!(ss.lanes, ws.lanes, "seed {seed}");
            assert_eq!(ss.reached_bits, ws.reached_bits, "seed {seed}");
            assert_eq!(ss.last_arrival, ws.last_arrival, "seed {seed}");
            assert_eq!(ss.buckets_visited, ws.buckets_visited, "seed {seed}");
            for v in 0..90u32 {
                for w in 0..FrontierEngine::words_per_row(&sparse) {
                    assert_eq!(sparse.reach_word(v, w), wide.reach_word(v, w));
                }
            }
        }
    }

    #[test]
    fn block_decomposition_is_bit_identical_to_full_width() {
        use crate::wide::source_blocks;
        let n = 150usize;
        let tn = random_network(11, n, true, 60);
        let mut full = vec![0; n * n];
        SparseSweeper::new().arrivals_into(&tn, 0..n as NodeId, 0, &mut full);
        for threads in [1, 2, 3, 8] {
            let mut sharded = Vec::new();
            let mut sweeper = SparseSweeper::new();
            for block in source_blocks(n, threads) {
                let mut rows = vec![0; block.len() * n];
                sweeper.arrivals_into(&tn, block, 0, &mut rows);
                sharded.extend(rows);
            }
            assert_eq!(sharded, full, "threads {threads}");
        }
    }

    #[test]
    fn wide_rows_materialise_beyond_64_words() {
        // > 4096 lanes forces multi-word rows far beyond one summary word;
        // the lazily materialised closure must match scalar reachability.
        let n = 4100usize;
        let g = generators::path(n);
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |e| vec![1 + (e % 2) as Time]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 2).unwrap();
        let mut sweeper = SparseSweeper::new();
        let stats = sweeper.sweep(&tn, 0..n as NodeId, 0, |_, _, _, _| {});
        assert!(sweeper.words_per_row() > 64);
        let mut reached = 0usize;
        for s in (0..n).step_by(397) {
            let run = foremost(&tn, s as NodeId, 0);
            for (v, &a) in run.arrivals().iter().enumerate() {
                let bit = sweeper.reach_word(v as NodeId, s / 64) >> (s % 64) & 1 == 1;
                assert_eq!(bit, a != NEVER, "pair ({s},{v})");
            }
            reached += run.reached_count();
        }
        assert!(reached > 0);
        assert!(stats.reached_bits >= reached);
    }

    #[test]
    fn empty_sources_are_a_no_op() {
        let tn = random_network(4, 10, false, 10);
        let mut sweeper = SparseSweeper::new();
        let stats = sweeper.sweep(&tn, 0..0, 0, |_, _, _, _| panic!("no events"));
        assert_eq!(stats.lanes, 0);
        assert_eq!(stats.reached_bits, 0);
        assert_eq!(
            stats.buckets_visited, 0,
            "saturated before the first bucket"
        );
        assert!(stats.all_reached(10), "0 lanes trivially cover 0 bits");
    }

    #[test]
    fn directed_arcs_are_one_way() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let tn = TemporalNetwork::new(g, LabelAssignment::single(vec![1, 2]).unwrap(), 2).unwrap();
        let mut out = vec![0; 9];
        SparseSweeper::new().arrivals_into(&tn, 0..3, 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, 0));
        assert_eq!(out[6..9], [NEVER, NEVER, 0]); // 2 reaches only itself
    }

    #[test]
    fn sweeper_reuse_across_networks_is_clean() {
        let mut sweeper = SparseSweeper::new();
        let tn1 = random_network(1, 90, false, 90);
        let mut a1 = vec![0; 90 * 90];
        sweeper.arrivals_into(&tn1, 0..90, 0, &mut a1);
        let tn2 = random_network(2, 33, true, 33);
        let mut a2 = vec![0; 33 * 33];
        sweeper.arrivals_into(&tn2, 0..33, 0, &mut a2);
        assert_eq!(a2, scalar_arrivals(&tn2, 0));
        let mut a1b = vec![0; 90 * 90];
        sweeper.arrivals_into(&tn1, 0..90, 0, &mut a1b);
        assert_eq!(a1, a1b);
    }

    #[test]
    fn engine_choice_dispatches_by_density() {
        // Below the crossover: batch, whatever the density.
        assert_eq!(EngineChoice::pick(100, 1, 1_000_000), EngineKind::Batch);
        assert_eq!(
            EngineChoice::pick(WIDE_CROSSOVER - 1, 1, 0),
            EngineKind::Batch
        );
        // At the crossover the density decides.
        let n = WIDE_CROSSOVER;
        let dense = n / DENSE_BUCKET_DIVISOR; // per-bucket fill threshold
        assert_eq!(EngineChoice::pick(n, 10, 10 * dense), EngineKind::Wide);
        assert_eq!(
            EngineChoice::pick(n, 10, 10 * dense - 1),
            EngineKind::Sparse
        );
        // Degenerate: no occupied buckets — trivially sparse.
        assert_eq!(EngineChoice::pick(n, 0, 0), EngineKind::Sparse);
    }

    #[test]
    fn engine_choice_for_networks() {
        // Dense: every edge of K_200 labelled once over lifetime 200.
        let g = generators::clique(200, false);
        let m = g.num_edges();
        let mut rng = SeedSequence::new(1).rng(0);
        let labels = LabelAssignment::from_fn(m, |_| vec![rng.range_u32(1, 200)]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 200).unwrap();
        assert_eq!(EngineChoice::pick_for(&tn), EngineKind::Wide);
        // Sparse: a 200-path over lifetime 800.
        let g = generators::path(200);
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, 800)]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 800).unwrap();
        assert_eq!(EngineChoice::pick_for(&tn), EngineKind::Sparse);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let tn = random_network(1, 5, false, 5);
        let _ = SparseSweeper::new().sweep(&tn, 3..9, 0, |_, _, _, _| {});
    }

    #[test]
    fn forced_compaction_preserves_arrivals_and_reports_cycles() {
        // A tiny compaction floor makes every between-bucket check live,
        // so the garbage test runs constantly and evacuations actually
        // fire on the relabel-heavy multi-label network — and the
        // arrivals must stay bit-identical to the scalar oracle.
        let mut rng = SeedSequence::new(9).rng(4);
        let g = generators::gnp(40, 0.2, false, &mut rng);
        let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
            (0..12).map(|_| rng.range_u32(1, 200)).collect()
        })
        .unwrap();
        let tn = TemporalNetwork::new(g, labels, 200).unwrap();
        let mut sweeper = SparseSweeper::new();
        sweeper.set_compaction_floor(1);
        let mut out = vec![0; 40 * 40];
        let stats = sweeper.arrivals_into(&tn, 0..40, 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, 0));
        assert!(stats.compactions > 0, "the tiny floor must force cycles");
        assert!(stats.arena_hiwater_words > 0);
        assert_eq!(sweeper.compactions_total(), stats.compactions as u64);
        assert_eq!(sweeper.arena_hiwater_words(), stats.arena_hiwater_words);
        // Warm re-sweep: identical arrivals and identical cycle count.
        let mut again = vec![0; 40 * 40];
        let stats2 = sweeper.arrivals_into(&tn, 0..40, 0, &mut again);
        assert_eq!(again, out);
        assert_eq!(stats2.compactions, stats.compactions);
    }

    #[test]
    fn default_floor_never_compacts_small_instances() {
        let tn = random_network(3, 70, false, 70);
        let mut sweeper = SparseSweeper::new();
        let stats = sweeper.sweep(&tn, 0..70, 0, |_, _, _, _| {});
        assert_eq!(stats.compactions, 0, "70 vertices sit far below the floor");
        assert!(stats.arena_hiwater_words > 0);
    }

    #[test]
    fn streaming_closure_matches_wide_under_a_tiny_budget() {
        // n = 300 spans two row blocks; a 1-byte budget clamps the cache
        // to a single slot, so alternating between the blocks evicts on
        // every query — the answers must still match the wide engine.
        let n = 300usize;
        let tn = random_network(13, n, false, 150);
        let mut wide = WideSweeper::new();
        wide.sweep(&tn, 0..n as NodeId, 0, |_, _, _, _| {});
        let mut sparse = SparseSweeper::new();
        sparse.set_closure_budget_bytes(1);
        sparse.sweep(&tn, 0..n as NodeId, 0, |_, _, _, _| {});
        let words = FrontierEngine::words_per_row(&sparse);
        for round in 0..2 {
            for v in [0u32, 255, 256, 299, 17, 270] {
                for w in 0..words {
                    assert_eq!(
                        sparse.reach_word(v, w),
                        wide.reach_word(v, w),
                        "round {round} vertex {v} word {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn for_each_reach_row_matches_reach_word() {
        let n = 130usize;
        let tn = random_network(17, n, true, 80);
        let mut sweeper = SparseSweeper::new();
        sweeper.sweep(&tn, 0..n as NodeId, 0, |_, _, _, _| {});
        let words = FrontierEngine::words_per_row(&sweeper);
        let mut streamed = vec![0u64; n * words];
        let mut visited = 0usize;
        SparseSweeper::for_each_reach_row(&mut sweeper, |v, row| {
            assert_eq!(row.len(), words);
            streamed[v as usize * words..(v as usize + 1) * words].copy_from_slice(row);
            visited += 1;
        });
        assert_eq!(visited, n, "every vertex streams exactly once");
        for v in 0..n as NodeId {
            for w in 0..words {
                assert_eq!(streamed[v as usize * words + w], sweeper.reach_word(v, w));
            }
        }
    }

    #[test]
    fn closure_cache_invalidates_across_sweeps() {
        // Query the streaming closure, re-sweep a different network, and
        // query again: the second answers must reflect the second sweep,
        // not a stale cached block.
        let tn1 = random_network(1, 90, false, 90);
        let tn2 = random_network(2, 90, true, 90);
        let mut sweeper = SparseSweeper::new();
        sweeper.sweep(&tn1, 0..90, 0, |_, _, _, _| {});
        let _ = sweeper.reach_word(0, 0);
        sweeper.sweep(&tn2, 0..90, 0, |_, _, _, _| {});
        let mut wide = WideSweeper::new();
        wide.sweep(&tn2, 0..90, 0, |_, _, _, _| {});
        for v in 0..90u32 {
            for w in 0..FrontierEngine::words_per_row(&sweeper) {
                assert_eq!(sweeper.reach_word(v, w), wide.reach_word(v, w));
            }
        }
    }

    #[test]
    fn parallel_dispatch_crossover_pins_the_worker_count() {
        // The satellite regression: at a fixed sparse instance right at
        // the crossover, one worker keeps the event-driven engine and
        // eight workers flip to the wide engine (its fill divides by the
        // worker count; the sparse shards' agenda walks do not).
        let (n, occupied, m) = (1024usize, 256usize, 2048usize);
        assert_eq!(
            EngineChoice::pick_parallel(n, occupied, m, 1),
            EngineKind::Sparse
        );
        assert_eq!(
            EngineChoice::pick_parallel(n, occupied, m, 2),
            EngineKind::Sparse
        );
        assert_eq!(
            EngineChoice::pick_parallel(n, occupied, m, 8),
            EngineKind::Wide
        );
        // `pick` is exactly the one-worker model, and the degree bound is
        // worker-independent: a high-degree instance stays wide at w = 1.
        assert_eq!(EngineChoice::pick(n, occupied, m), EngineKind::Sparse);
        assert_eq!(
            EngineChoice::pick_parallel(1024, 4096, 4 * 1024 + 1, 1),
            EngineKind::Wide
        );
        // Workers never flip an instance *towards* sparse.
        for w in 1..=16usize {
            if EngineChoice::pick_parallel(n, occupied, m, w) == EngineKind::Wide {
                assert_eq!(
                    EngineChoice::pick_parallel(n, occupied, m, w + 1),
                    EngineKind::Wide
                );
            }
        }
    }
}
