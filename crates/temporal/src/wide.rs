//! Wide-frontier closure engine: all `n` sources in a **single**
//! time-ordered pass over the bucket index.
//!
//! [`BatchSweeper`] answers 64 sources per
//! pass, so an all-pairs question at `n` vertices re-traverses the
//! time-edge index `⌈n/64⌉` times — and under sparse availability
//! (lifetime `a = kn`, mostly-empty buckets) each of those passes walks a
//! long, cold index. [`WideSweeper`] removes both costs:
//!
//! * **Wide frontiers.** Every vertex carries `W = ⌈lanes/64⌉` frontier
//!   words (a flat `n × W` `u64` matrix, row per vertex), so one pass
//!   answers every source at once. Per edge the inner loop is `W`
//!   contiguous word operations — the edge-visit overhead (bucket walk,
//!   endpoint loads) that dominates the batched engine is paid once
//!   instead of `⌈n/64⌉` times, and the word loop vectorizes.
//! * **Saturation early-exit.** The sweep counts set bits and stops the
//!   moment `reached == lanes · n`: on dense instances the pass visits
//!   `O(instance diameter)` buckets instead of all `a`
//!   ([`WideStats::buckets_visited`] makes this observable).
//! * **Empty-bucket skipping.** The pass iterates
//!   [`TemporalNetwork::occupied_times`] rather than probing every
//!   `t ∈ {1, …, a}`, turning sparse sweeps from `O(a + M·W)` into
//!   `O(occupied + M·W)`.
//! * **Intra-instance parallelism.** The lane axis shards into word-aligned
//!   column blocks ([`source_blocks`]): lanes never interact, so each
//!   worker sweeps its own block of the matrix independently and results
//!   are folded in canonical block order — bit-identical for 1, 2 or 8
//!   workers (pinned by `tests/wide_proptests.rs`).
//!
//! ## Semantics contract
//!
//! The sweep preserves the exact strictly-increasing-label semantics of
//! the scalar [`foremost`](crate::foremost::foremost) sweep and of
//! [`BatchSweeper`]: `before[v]` holds the
//! lanes that reached `v` **strictly before** the time being processed,
//! `delta[v]` the lanes newly arriving **at** it, and a whole bucket is
//! committed at once — sound because a journey's labels strictly
//! increase (Definition 2), so a vertex first reached *at* `t` can never
//! relay over another label-`t` edge. Per-(source, target) arrival times
//! are therefore **bit-identical** to `n` independent scalar sweeps.
//!
//! ## Early-exit soundness
//!
//! `reached` counts distinct `(lane, vertex)` bits ever set; it is
//! monotone and bounded by `lanes · n`. Once it hits the bound every
//! frontier word is all-ones over the live lanes, so no later bucket can
//! produce a fresh bit (`before[u] & !before[v] = 0` for every edge) —
//! stopping is lossless. Skipping empty buckets is trivially lossless:
//! an empty bucket applies no edges and commits nothing.
//!
//! Callers dispatch through the density-aware
//! [`EngineChoice::pick`](crate::sparse::EngineChoice::pick):
//! `Batch` below [`WIDE_CROSSOVER`], then `Wide` for dense instances
//! (occupied buckets carrying ≥ `n/16` time-edges on average, where the
//! saturation exit and the branch-free word loop pay off) and the
//! event-driven [`sparse`](crate::sparse) engine for everything sparser.
//! [`SweepScratch`] bundles all three sweepers for Monte Carlo loops
//! whose trials straddle the boundaries. Few-source queries stay on
//! `BatchSweeper`; the scalar `foremost` remains the differential-testing
//! oracle for every engine.

use crate::engine::BatchSweeper;
use crate::kernels::{self, AlignedSlab, CHUNK_WORDS};
use crate::network::TemporalNetwork;
use crate::{Time, NEVER};
use ephemeral_graph::NodeId;
use ephemeral_parallel::faults::{self, CancelToken};
use std::ops::Range;

/// Vertex count at which the all-source entry points (closure, all-pairs
/// distances, instance diameter, connectivity, metrics) switch from the
/// 64-lane [`BatchSweeper`] to a full-width engine. Below this the wide
/// matrix is at most a few words per vertex and the batched engine's
/// smaller frontier wins; above it a single pass amortises the index walk
/// over every source, and the density-aware
/// [`EngineChoice::pick`](crate::sparse::EngineChoice::pick) decides
/// *which* full-width engine — [`WideSweeper`] for dense instances, the
/// event-driven [`SparseSweeper`](crate::sparse::SparseSweeper) for
/// sparse ones.
pub const WIDE_CROSSOVER: usize = 192;

/// Which journey engine served a computation — the attribution that
/// `experiments sweep` rows report so perf regressions are traceable to
/// the engine that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Per-source scalar `foremost` sweep (single-source work like the
    /// §3.5 flooding protocol).
    Scalar,
    /// 64-lane [`BatchSweeper`], one pass
    /// per batch of sources.
    Batch,
    /// Single-pass [`WideSweeper`].
    Wide,
    /// Event-driven [`SparseSweeper`](crate::sparse::SparseSweeper).
    Sparse,
}

impl EngineKind {
    /// Short stable identifier
    /// (`"scalar"` / `"batch"` / `"wide"` / `"sparse"`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Batch => "batch",
            Self::Wide => "wide",
            Self::Sparse => "sparse",
        }
    }
}

/// The `n`-only dispatch floor: `Wide` at `n ≥` [`WIDE_CROSSOVER`],
/// `Batch` below. The all-source entry points no longer call this
/// directly — they dispatch through the density-aware
/// [`EngineChoice::pick`](crate::sparse::EngineChoice::pick), which keeps
/// this batch/full-width boundary but splits the full-width side between
/// the wide and sparse engines by occupied-bucket fill.
#[must_use]
pub const fn engine_for(n: usize) -> EngineKind {
    if n >= WIDE_CROSSOVER {
        EngineKind::Wide
    } else {
        EngineKind::Batch
    }
}

/// The interface shared by the full-width frontier engines —
/// [`WideSweeper`] and the event-driven
/// [`SparseSweeper`](crate::sparse::SparseSweeper) — so the all-source
/// entry points (closure, distances, diameter, connectivity, metrics)
/// implement each code path once, generically over the engine the
/// density-aware dispatch picked. Both implementations uphold the same
/// contract: exact "reached strictly before `t`" + per-bucket-delta
/// semantics, arrivals bit-identical to per-source scalar sweeps.
pub trait FrontierEngine: Default + Send {
    /// Sweep `sources` ignoring labels `> horizon` (see
    /// [`WideSweeper::sweep_with_horizon`]).
    fn sweep_with_horizon(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        horizon: Time,
        on_reach: impl FnMut(NodeId, usize, u64, Time),
    ) -> WideStats;

    /// Sweep `sources` over the full lifetime (see [`WideSweeper::sweep`]).
    fn sweep(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        on_reach: impl FnMut(NodeId, usize, u64, Time),
    ) -> WideStats {
        self.sweep_with_horizon(tn, sources, start_time, tn.lifetime(), on_reach)
    }

    /// Sweep and fill a per-pair arrival matrix (see
    /// [`WideSweeper::arrivals_into`]).
    ///
    /// # Panics
    /// If `out.len() != sources.len() · tn.num_nodes()`.
    fn arrivals_into(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        out: &mut [Time],
    ) -> WideStats {
        let n = tn.num_nodes();
        assert_eq!(
            out.len(),
            sources.len() * n,
            "arrival buffer must hold sources × vertices entries"
        );
        out.fill(NEVER);
        for (lane, s) in sources.clone().enumerate() {
            out[lane * n + s as usize] = start_time;
        }
        self.sweep(tn, sources, start_time, |v, w, mut fresh, t| {
            while fresh != 0 {
                let lane = w * 64 + fresh.trailing_zeros() as usize;
                out[lane * n + v as usize] = t;
                fresh &= fresh - 1;
            }
        })
    }

    /// Word `w` of the closure row of `v` after the most recent sweep
    /// (see [`WideSweeper::reach_word`]). Takes `&mut self` because the
    /// sparse engine materialises its closure row blocks lazily on
    /// demand.
    fn reach_word(&mut self, v: NodeId, w: usize) -> u64;

    /// Visit the closure row of every vertex of the most recent sweep in
    /// ascending vertex order: `row[w]` is [`FrontierEngine::reach_word`]
    /// word `w` of the visited vertex, `row.len() == words_per_row()`.
    /// This is the streaming path for whole-closure consumers — the wide
    /// engine lends slices of its frontier matrix zero-copy, the sparse
    /// engine streams each row out of its reacher lists through one
    /// pooled `O(words_per_row)` buffer, so **neither engine ever builds
    /// an `n × ⌈lanes/64⌉` matrix for a visitor**.
    fn for_each_reach_row(&mut self, f: impl FnMut(NodeId, &[u64]));

    /// Words per frontier row of the most recent sweep.
    fn words_per_row(&self) -> usize;

    /// The [`EngineKind`] this engine reports as its attribution.
    fn kind() -> EngineKind;

    /// The persistent instance of this engine inside a [`SweepScratch`]
    /// bundle — what lets the sequential scratch entry points route
    /// through
    /// [`EngineChoice::dispatch`](crate::sparse::EngineChoice::dispatch)
    /// with warm buffers instead of hand-matching on the engine kind.
    fn from_scratch(scratch: &mut SweepScratch) -> &mut Self;
}

impl FrontierEngine for WideSweeper {
    fn sweep_with_horizon(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        horizon: Time,
        on_reach: impl FnMut(NodeId, usize, u64, Time),
    ) -> WideStats {
        Self::sweep_with_horizon(self, tn, sources, start_time, horizon, on_reach)
    }

    fn reach_word(&mut self, v: NodeId, w: usize) -> u64 {
        Self::reach_word(self, v, w)
    }

    fn for_each_reach_row(&mut self, f: impl FnMut(NodeId, &[u64])) {
        Self::for_each_reach_row(self, f);
    }

    fn words_per_row(&self) -> usize {
        Self::words_per_row(self)
    }

    fn kind() -> EngineKind {
        EngineKind::Wide
    }

    fn from_scratch(scratch: &mut SweepScratch) -> &mut Self {
        &mut scratch.wide
    }
}

/// Word-aligned column blocks covering sources `0..n`: at most
/// `min(threads, ⌈n/64⌉)` contiguous ranges, each a whole number of
/// 64-lane words (the last possibly ragged). Lanes in different blocks
/// never interact, so sweeping the blocks on different workers and
/// folding in block order is bit-identical to one full-width sweep.
#[must_use]
pub fn source_blocks(n: usize, threads: usize) -> Vec<Range<NodeId>> {
    word_blocks(0, n.div_ceil(64), threads, n)
}

/// The number of column blocks a sequential all-source sweep should use
/// for cache residency: one block per [`BLOCK_WORDS`] words
/// (`= ⌈n/1024⌉`). A block's compact `n × 16`-word `before` + `delta`
/// slabs fit the fast cache levels where the full-width matrices at
/// large `n` do not — worth more than the extra walks of the (skip-listed)
/// bucket index it costs. The all-source entry points shard into
/// `max(threads, cache_block_count(n))` blocks, so the blocking engages
/// regardless of the worker count; results are bit-identical either way.
#[must_use]
pub fn cache_block_count(n: usize) -> usize {
    n.div_ceil(64 * BLOCK_WORDS).max(1)
}

/// The allocation-free iterator form of
/// `source_blocks(n, cache_block_count(n))` — the sequential
/// cache-blocked sweep schedule of the Monte Carlo scratch paths, which
/// must not heap-allocate per trial.
pub fn cache_blocks(n: usize) -> impl Iterator<Item = Range<NodeId>> {
    block_schedule(n, cache_block_count(n))
}

/// The allocation-free iterator form of [`source_blocks`]`(n, shards)`:
/// the same word-aligned column-block schedule, yielded lazily — what the
/// sequential scratch paths iterate so they never heap-allocate per
/// trial. `shards = 1` degenerates to the single full-width block `0..n`.
pub fn block_schedule(n: usize, shards: usize) -> impl Iterator<Item = Range<NodeId>> {
    let words = n.div_ceil(64);
    let chunks = words.div_ceil(CHUNK_WORDS);
    let parts = shards.clamp(1, chunks.max(1));
    let base = chunks / parts;
    let extra = chunks % parts;
    let mut word = 0usize;
    (0..parts).map(move |b| {
        let lo = (word * 64).min(n) as NodeId;
        word += ((base + usize::from(b < extra)) * CHUNK_WORDS).min(words - word);
        lo..(word * 64).min(n) as NodeId
    })
}

/// The fail-fast split used by the whole-network connectivity checks: the
/// first 64-lane word as a cheap probe block (a failing instance almost
/// always has an unreached pair among any 64 sources, so probing it first
/// costs no more than one batched sweep), plus the remaining words
/// sharded into at most `threads` wide blocks.
///
/// # Panics
/// If `n == 0`.
#[must_use]
pub fn probe_blocks(n: usize, threads: usize) -> (Range<NodeId>, Vec<Range<NodeId>>) {
    let words = n.div_ceil(64);
    assert!(words > 0, "probe_blocks needs at least one source");
    let probe = 0..(64.min(n)) as NodeId;
    (probe, word_blocks(1, words, threads, n))
}

/// Word-aligned blocks covering sources `64·lo_word .. n`, split into at
/// most `threads` near-equal contiguous word ranges whose interior edges
/// are rounded to whole [`CHUNK_WORDS`] kernel chunks — every block but
/// the last spans a multiple of `64 · CHUNK_WORDS` lanes, so each shard's
/// slice of a chunk-aligned frontier slab is itself whole aligned chunks
/// (only the final tail is ragged).
fn word_blocks(lo_word: usize, words: usize, threads: usize, n: usize) -> Vec<Range<NodeId>> {
    if words <= lo_word {
        return Vec::new();
    }
    let span = words - lo_word;
    let chunks = span.div_ceil(CHUNK_WORDS);
    let blocks = threads.clamp(1, chunks);
    let base = chunks / blocks;
    let extra = chunks % blocks;
    let mut out = Vec::with_capacity(blocks);
    let mut word = lo_word;
    for b in 0..blocks {
        let take = ((base + usize::from(b < extra)) * CHUNK_WORDS).min(lo_word + span - word);
        let lo = (word * 64).min(n) as NodeId;
        let hi = ((word + take) * 64).min(n) as NodeId;
        out.push(lo..hi);
        word += take;
    }
    out
}

/// What a wide sweep observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideStats {
    /// Number of source lanes the sweep carried.
    pub lanes: usize,
    /// Total `(lane, vertex)` bits set at the end of the sweep (diagonal
    /// included). Equals `lanes · n` iff every lane reached everything.
    pub reached_bits: usize,
    /// The last time any bit newly set (`0` when nothing was reached).
    pub last_arrival: Time,
    /// Occupied buckets the pass actually visited before finishing or
    /// saturating — `≪ a` on dense instances (the early-exit observable),
    /// `≤ occupied ≤ min(a, M)` always.
    pub buckets_visited: usize,
    /// High-water mark of the sparse engine's region arena during the
    /// sweep, in `u32` words (`0` for the wide and batched engines, which
    /// carry no arena).
    pub arena_hiwater_words: usize,
    /// Arena compactions the sparse engine performed during the sweep
    /// (`0` for the wide and batched engines).
    pub compactions: usize,
    /// Graceful-degradation events the sweep absorbed instead of
    /// aborting: forced arena compactions under an
    /// [`arena budget`](crate::sparse::SparseSweeper::set_arena_budget_words)
    /// and closure row-block shrinks under the streaming-closure byte
    /// budget. `0` means the sweep ran at full capacity.
    pub degraded: usize,
}

impl WideStats {
    /// The all-zero stats — the identity of [`WideStats::absorb`], what
    /// per-shard folds start from.
    #[must_use]
    pub const fn empty() -> Self {
        Self {
            lanes: 0,
            reached_bits: 0,
            last_arrival: 0,
            buckets_visited: 0,
            arena_hiwater_words: 0,
            compactions: 0,
            degraded: 0,
        }
    }

    /// Fold another shard's stats into this one: counts add
    /// (`lanes`, `reached_bits`, `compactions`, `degraded`), watermarks max
    /// (`last_arrival`, `buckets_visited`, `arena_hiwater_words` — each
    /// shard walks its own bucket subsequence and owns its own arena, so
    /// the folded values are "the deepest any shard went"). Folding in
    /// shard order is how the sharded entry points stay bit-identical
    /// across worker counts.
    pub fn absorb(&mut self, other: &Self) {
        self.lanes += other.lanes;
        self.reached_bits += other.reached_bits;
        self.last_arrival = self.last_arrival.max(other.last_arrival);
        self.buckets_visited = self.buckets_visited.max(other.buckets_visited);
        self.arena_hiwater_words = self.arena_hiwater_words.max(other.arena_hiwater_words);
        self.compactions += other.compactions;
        self.degraded += other.degraded;
    }

    /// Did every lane reach every one of the `n` vertices?
    #[must_use]
    pub const fn all_reached(&self, n: usize) -> bool {
        self.reached_bits == self.lanes * n
    }

    /// Ordered `(lane, vertex)` pairs the sweep did **not** connect.
    #[must_use]
    pub const fn unreached_pairs(&self, n: usize) -> usize {
        self.lanes * n - self.reached_bits
    }
}

/// Reusable scratch state of the wide-frontier sweep.
///
/// Construction is free; the first sweep sizes the `n × W` frontier
/// matrices and subsequent sweeps of same-shaped networks reuse them, so
/// a Monte Carlo loop that keeps one sweeper per worker performs no
/// per-trial allocation (covered by `ephemeral-core`'s allocation
/// regression test).
///
/// ```
/// use ephemeral_graph::generators;
/// use ephemeral_temporal::wide::WideSweeper;
/// use ephemeral_temporal::{LabelAssignment, TemporalNetwork, NEVER};
///
/// // 0—1 @1, 1—2 @2: all three sources answered in one pass.
/// let tn = TemporalNetwork::new(
///     generators::path(3),
///     LabelAssignment::from_vecs(vec![vec![1], vec![2]]).unwrap(),
///     2,
/// )
/// .unwrap();
/// let mut sweeper = WideSweeper::new();
/// let mut arrivals = vec![NEVER; 3 * 3];
/// let stats = sweeper.arrivals_into(&tn, 0..3, 0, &mut arrivals);
/// assert_eq!(arrivals, vec![0, 1, 2, 1, 0, 2, NEVER, 2, 0]);
/// assert_eq!(stats.unreached_pairs(3), 1); // 2 never reaches 0
/// assert_eq!(stats.buckets_visited, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WideSweeper {
    /// Row-major `n × stride` matrix in a 64-byte-aligned slab: lanes
    /// that reached `v` strictly before the time being processed. Rows
    /// start every `stride` words (`width` rounded up to a whole
    /// [`CHUNK_WORDS`] kernel chunk), so every row base is itself
    /// chunk-aligned; words `width..stride` of each row are dead padding.
    before: AlignedSlab,
    /// Lanes newly arriving at `v` at the time being processed (same
    /// aligned `n × stride` layout).
    delta: AlignedSlab,
    /// Vertices with a non-zero `delta` row in the current column block.
    touched: Vec<NodeId>,
    /// `stamp[v] == epoch` marks `v` as already on `touched` for the
    /// (bucket, column block) round `epoch`.
    stamp: Vec<u64>,
    /// Set lanes per row — `row_bits[v] == lanes` means row `v` is
    /// saturated and edges into `v` can be skipped without reading it.
    row_bits: Vec<u32>,
    /// Per-bucket endpoint scratch: each bucket's edges are resolved once
    /// and reused by every column block.
    pairs: Vec<(NodeId, NodeId)>,
    /// Bits set so far per column block (saturated blocks are skipped).
    block_reached: Vec<usize>,
    /// `block_lanes · n` per column block.
    block_target: Vec<usize>,
    /// Words per row of the most recent sweep.
    width: usize,
    /// Allocated words per row: `width` rounded up to a whole kernel
    /// chunk, so consecutive rows stay 64-byte aligned.
    stride: usize,
    /// Cooperative cancellation token checked at every bucket boundary
    /// (`None` = never fires; see [`SweepScratch::set_cancel_token`]).
    cancel: Option<CancelToken>,
}

/// Words per column block of one pass: 16 words (1024 lanes) keeps a
/// block's slice of `before` + `delta` at `256·n` bytes — comfortably
/// cache-resident — while still amortising each edge visit over up to
/// 1024 sources. Wider sweeps are processed in blocks of this many words
/// internally (see [`WideSweeper::sweep_with_horizon`]), and
/// [`cache_block_count`] sizes the entry points' sharding to it.
pub const BLOCK_WORDS: usize = 16;

impl WideSweeper {
    /// A sweeper with empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or clear) the cooperative cancellation token checked at every
    /// bucket boundary of subsequent sweeps — the sweep grid's per-cell
    /// watchdog (`--cell-timeout`) installs the cell's token here.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Words per frontier row of the most recent sweep
    /// (`⌈lanes/64⌉`).
    #[must_use]
    pub const fn words_per_row(&self) -> usize {
        self.width
    }

    /// Word `w` of the closure row of `v` after the most recent sweep:
    /// bit `i` set iff source `sources.start + 64w + i` reached `v`
    /// (sources count themselves).
    ///
    /// # Panics
    /// If `v` or `w` is out of range for the last swept network.
    #[inline]
    #[must_use]
    pub fn reach_word(&self, v: NodeId, w: usize) -> u64 {
        assert!(w < self.width, "word {w} out of range");
        self.before.words()[v as usize * self.stride + w]
    }

    /// Visit the closure row of every vertex of the most recent sweep in
    /// ascending vertex order, lending each `width`-word row straight out
    /// of the frontier matrix — no copies (the
    /// [`FrontierEngine::for_each_reach_row`] streaming contract).
    pub fn for_each_reach_row(&self, mut f: impl FnMut(NodeId, &[u64])) {
        if self.width == 0 {
            return;
        }
        for (v, row) in self.before.words().chunks_exact(self.stride).enumerate() {
            f(v as NodeId, &row[..self.width]);
        }
    }

    /// One single-pass wide sweep from the contiguous source range
    /// `sources` (lane `i` ↔ vertex `sources.start + i`), using labels
    /// strictly greater than `start_time`. `on_reach(v, w, fresh, t)`
    /// fires once per newly set frontier word: `fresh` holds the lanes of
    /// word `w` that first reached `v` at time `t`, in non-decreasing
    /// order of `t`.
    ///
    /// # Panics
    /// If any source is out of range.
    pub fn sweep(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        on_reach: impl FnMut(NodeId, usize, u64, Time),
    ) -> WideStats {
        self.sweep_with_horizon(tn, sources, start_time, tn.lifetime(), on_reach)
    }

    /// [`WideSweeper::sweep`] ignoring every label greater than `horizon`
    /// (matching `foremost_with_horizon` lane for lane).
    ///
    /// # Panics
    /// If any source is out of range.
    pub fn sweep_with_horizon(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        horizon: Time,
        mut on_reach: impl FnMut(NodeId, usize, u64, Time),
    ) -> WideStats {
        let n = tn.num_nodes();
        let lanes = sources.len();
        let width = lanes.div_ceil(64);
        let stride = width.next_multiple_of(CHUNK_WORDS);
        self.width = width;
        self.stride = stride;
        self.before.resize_zeroed(n * stride);
        self.delta.resize_zeroed(n * stride);
        self.touched.clear();
        self.stamp.clear();
        self.stamp.resize(n, 0);
        self.row_bits.clear();
        self.row_bits.resize(n, 0);
        // Column blocks of the pass: per bucket, every live block applies
        // the (once-resolved) edges over its own word range and commits
        // before the next block runs, so a block's slice of `before` +
        // `delta` stays cache-resident. Blocks cover disjoint lanes, so
        // the block loop cannot change any result — only the cache
        // behaviour and the callback order *within* a bucket.
        let nblocks = width.div_ceil(BLOCK_WORDS).max(1);
        self.block_reached.clear();
        self.block_reached.resize(nblocks, 0);
        self.block_target.clear();
        self.block_target.resize(nblocks, 0);
        for b in 0..nblocks {
            let wb = b * BLOCK_WORDS;
            let we = (wb + BLOCK_WORDS).min(width);
            self.block_target[b] = (lanes.min(we * 64) - (wb * 64).min(lanes)) * n;
        }
        {
            let before = self.before.words_mut();
            for (lane, s) in sources.clone().enumerate() {
                assert!((s as usize) < n, "source {s} out of range");
                before[s as usize * stride + lane / 64] |= 1 << (lane % 64);
                self.row_bits[s as usize] += 1;
                self.block_reached[lane / 64 / BLOCK_WORDS] += 1;
            }
        }
        let target = lanes * n;
        let lane_count = lanes as u32;
        let mut reached = lanes;
        let mut last_arrival: Time = 0;
        let mut buckets_visited = 0usize;
        let mut epoch = 0u64;
        let directed = tn.graph().is_directed();
        let cancel = self.cancel.clone();
        let Self {
            before,
            delta,
            touched,
            stamp,
            row_bits,
            pairs,
            block_reached,
            block_target,
            ..
        } = self;
        let before = before.words_mut();
        let delta = delta.words_mut();
        // Apply one direction of an edge over one block's word range: OR
        // `row(from) & !row(to)` into `delta`'s row of `to`, returning the
        // union of the new bits — `kernels::ornot_accumulate`, the one
        // definition of the OR/ANDN word loop, over chunk-aligned
        // stride-padded rows.
        let apply = |before: &[u64],
                     delta: &mut [u64],
                     from: usize,
                     to: usize,
                     wb: usize,
                     we: usize|
         -> u64 {
            kernels::ornot_accumulate(
                &mut delta[to * stride + wb..to * stride + we],
                &before[from * stride + wb..from * stride + we],
                &before[to * stride + wb..to * stride + we],
            )
        };
        for &t in tn.occupied_between(start_time, horizon) {
            if reached >= target {
                break; // saturated: no later bucket can set a fresh bit
            }
            faults::hit(faults::site::ENGINE_BUCKET, u64::from(t));
            if let Some(c) = &cancel {
                c.checkpoint();
            }
            buckets_visited += 1;
            // Resolve the bucket's endpoints once; every block reuses them.
            pairs.clear();
            pairs.extend(tn.edges_at(t).iter().map(|&e| tn.graph().endpoints(e)));
            for b in 0..nblocks {
                if block_reached[b] >= block_target[b] {
                    continue; // this block's lanes are saturated
                }
                epoch += 1;
                let wb = b * BLOCK_WORDS;
                let we = (wb + BLOCK_WORDS).min(width);
                for &(u, v) in pairs.iter() {
                    // u -> v: lanes that left u before t and have not seen
                    // v. A saturated target row can gain nothing — skip it
                    // from the one-word `row_bits` check without touching
                    // the row.
                    if row_bits[v as usize] != lane_count
                        && apply(before, delta, u as usize, v as usize, wb, we) != 0
                        && stamp[v as usize] != epoch
                    {
                        stamp[v as usize] = epoch;
                        touched.push(v);
                    }
                    // v -> u for undirected edges.
                    if !directed
                        && row_bits[u as usize] != lane_count
                        && apply(before, delta, v as usize, u as usize, wb, we) != 0
                        && stamp[u as usize] != epoch
                    {
                        stamp[u as usize] = epoch;
                        touched.push(u);
                    }
                }
                // Commit the block's delta at once: a vertex first reached
                // at t cannot relay over another label-t edge, so `before`
                // stays frozen while the bucket is scanned (the
                // Definition 2 argument). The loop body is branch-free
                // apart from the callback guard, which vanishes when
                // `on_reach` is a no-op.
                let mut block_fresh = 0usize;
                for &v in touched.iter() {
                    let v0 = v as usize * stride;
                    let row_fresh = kernels::commit_fresh(
                        &mut delta[v0 + wb..v0 + we],
                        &mut before[v0 + wb..v0 + we],
                        |w, fresh| on_reach(v, wb + w, fresh, t),
                    );
                    // Every touched row saw at least one fresh bit
                    // (`apply` returned non-zero against the same frozen
                    // `before`).
                    debug_assert!(row_fresh > 0);
                    block_fresh += row_fresh as usize;
                    row_bits[v as usize] += row_fresh;
                }
                if block_fresh > 0 {
                    reached += block_fresh;
                    block_reached[b] += block_fresh;
                    last_arrival = t;
                }
                touched.clear();
            }
        }
        WideStats {
            lanes,
            reached_bits: reached,
            last_arrival,
            buckets_visited,
            arena_hiwater_words: 0,
            compactions: 0,
            degraded: 0,
        }
    }

    /// Sweep and record per-pair arrival times into `out`, laid out
    /// `out[lane · n + v] = δ(sources.start + lane, v)` with [`NEVER`]
    /// marking unreachable pairs and each source reporting its own
    /// `start_time` — lane for lane the `arrivals()` array of a scalar
    /// foremost run.
    ///
    /// # Panics
    /// If `out.len() != sources.len() · n`, or as [`WideSweeper::sweep`].
    pub fn arrivals_into(
        &mut self,
        tn: &TemporalNetwork,
        sources: Range<NodeId>,
        start_time: Time,
        out: &mut [Time],
    ) -> WideStats {
        let n = tn.num_nodes();
        assert_eq!(
            out.len(),
            sources.len() * n,
            "arrival buffer must hold sources × vertices entries"
        );
        out.fill(NEVER);
        for (lane, s) in sources.clone().enumerate() {
            out[lane * n + s as usize] = start_time;
        }
        self.sweep(tn, sources, start_time, |v, w, mut fresh, t| {
            while fresh != 0 {
                let lane = w * 64 + fresh.trailing_zeros() as usize;
                out[lane * n + v as usize] = t;
                fresh &= fresh - 1;
            }
        })
    }
}

/// All three journey engines in one reusable bundle — the per-worker
/// scratch of Monte Carlo loops whose instances straddle the dispatch
/// boundaries (e.g. `ephemeral-core`'s diameter estimators and scenario
/// sweeps). Whichever engine
/// [`EngineChoice::pick`](crate::sparse::EngineChoice::pick) selects per
/// trial, the others' buffers stay warm and unused; all three are
/// allocation-free across same-shaped trials.
#[derive(Debug, Clone, Default)]
pub struct SweepScratch {
    /// The 64-lane batched engine (below the crossover).
    pub batch: BatchSweeper,
    /// The single-pass wide engine (dense instances above the crossover).
    pub wide: WideSweeper,
    /// The event-driven sparse engine (sparse instances above the
    /// crossover).
    pub sparse: crate::sparse::SparseSweeper,
    /// The pooled differential-maintenance cursor (checkpoint slabs,
    /// log arenas and dirty-tracking tables), seeded by
    /// [`SweepScratch::record_delta`](crate::delta) and reused across
    /// trials so warm
    /// [`apply_label_move`](crate::delta::DeltaCursor::apply_label_move)
    /// calls allocate nothing.
    pub delta: crate::delta::DeltaCursor,
}

impl SweepScratch {
    /// A scratch bundle with empty buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or clear) one cooperative cancellation token on every engine
    /// in the bundle — whichever engine the density-aware dispatch picks
    /// for a trial honours the same token at its bucket boundaries. The
    /// sweep grid's per-cell watchdog (`--cell-timeout`) installs the
    /// cell's token here.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.batch.set_cancel_token(token.clone());
        self.wide.set_cancel_token(token.clone());
        self.sparse.set_cancel_token(token.clone());
        self.delta.set_cancel_token(token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::foremost::{foremost, foremost_with_horizon};
    use crate::LabelAssignment;
    use ephemeral_graph::{generators, GraphBuilder};
    use ephemeral_rng::{RandomSource, SeedSequence};

    fn random_network(seed: u64, n: usize, directed: bool, lifetime: Time) -> TemporalNetwork {
        let mut rng = SeedSequence::new(seed).rng(0);
        let g = generators::gnp(n, 0.12, directed, &mut rng);
        let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
            vec![rng.range_u32(1, lifetime), rng.range_u32(1, lifetime)]
        })
        .unwrap();
        TemporalNetwork::new(g, labels, lifetime).unwrap()
    }

    fn scalar_arrivals(tn: &TemporalNetwork, start: Time) -> Vec<Time> {
        let n = tn.num_nodes();
        let mut out = Vec::with_capacity(n * n);
        for s in 0..n as NodeId {
            out.extend_from_slice(foremost(tn, s, start).arrivals());
        }
        out
    }

    #[test]
    fn wide_matches_scalar_on_a_path() {
        let g = generators::path(4);
        let labels = LabelAssignment::from_vecs(vec![vec![1], vec![2], vec![3]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 3).unwrap();
        let mut out = vec![0; 16];
        let stats = WideSweeper::new().arrivals_into(&tn, 0..4, 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, 0));
        assert_eq!(stats.lanes, 4);
        assert_eq!(stats.last_arrival, 3);
        assert_eq!(stats.buckets_visited, 3);
    }

    #[test]
    fn wide_matches_scalar_on_random_networks() {
        // 70 and 130 vertices: 2- and 3-word rows, ragged last word.
        for &n in &[70usize, 130] {
            for directed in [false, true] {
                let tn = random_network(3, n, directed, n as Time);
                let mut out = vec![0; n * n];
                WideSweeper::new().arrivals_into(&tn, 0..n as NodeId, 0, &mut out);
                assert_eq!(out, scalar_arrivals(&tn, 0), "n {n} directed {directed}");
            }
        }
    }

    #[test]
    fn nonzero_start_time_matches_scalar() {
        let tn = random_network(5, 40, false, 40);
        for start in [1, 5, 39] {
            let mut out = vec![0; 40 * 40];
            WideSweeper::new().arrivals_into(&tn, 0..40, start, &mut out);
            assert_eq!(out, scalar_arrivals(&tn, start), "start {start}");
        }
    }

    #[test]
    fn horizon_matches_scalar_horizon() {
        let tn = random_network(7, 30, false, 30);
        let horizon = 7;
        let mut got = vec![NEVER; 30 * 30];
        for s in 0..30 {
            got[s * 30 + s] = 0;
        }
        WideSweeper::new().sweep_with_horizon(&tn, 0..30, 0, horizon, |v, w, mut fresh, t| {
            while fresh != 0 {
                let lane = w * 64 + fresh.trailing_zeros() as usize;
                got[lane * 30 + v as usize] = t;
                fresh &= fresh - 1;
            }
        });
        let mut expected = Vec::new();
        for s in 0..30 {
            expected.extend_from_slice(foremost_with_horizon(&tn, s, 0, horizon).arrivals());
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn saturation_early_exit_is_observable() {
        // Every edge of K_8 available at every time: the closure saturates
        // after bucket 1 of 50.
        let g = generators::clique(8, false);
        let m = g.num_edges();
        let labels = LabelAssignment::from_vecs(vec![(1..=50).collect(); m]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 50).unwrap();
        let mut sweeper = WideSweeper::new();
        let stats = sweeper.sweep(&tn, 0..8, 0, |_, _, _, _| {});
        assert!(stats.all_reached(8));
        assert_eq!(stats.buckets_visited, 1, "saturated after the first bucket");
        assert_eq!(stats.last_arrival, 1);
    }

    #[test]
    fn empty_buckets_are_skipped() {
        // Path with labels 10 and 20 over lifetime 1000: exactly two
        // occupied buckets are visited, not a thousand.
        let g = generators::path(3);
        let labels = LabelAssignment::from_vecs(vec![vec![10], vec![20]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 1000).unwrap();
        let mut sweeper = WideSweeper::new();
        let mut out = vec![0; 9];
        let stats = sweeper.arrivals_into(&tn, 0..3, 0, &mut out);
        assert_eq!(stats.buckets_visited, 2);
        assert_eq!(out, scalar_arrivals(&tn, 0));
    }

    #[test]
    fn block_decomposition_is_bit_identical_to_full_width() {
        let n = 150usize;
        let tn = random_network(11, n, true, 60);
        let mut full = vec![0; n * n];
        WideSweeper::new().arrivals_into(&tn, 0..n as NodeId, 0, &mut full);
        for threads in [1, 2, 3, 8] {
            let mut sharded = Vec::new();
            let mut sweeper = WideSweeper::new();
            for block in source_blocks(n, threads) {
                let mut rows = vec![0; block.len() * n];
                sweeper.arrivals_into(&tn, block, 0, &mut rows);
                sharded.extend(rows);
            }
            assert_eq!(sharded, full, "threads {threads}");
        }
    }

    #[test]
    fn source_blocks_partition_and_align() {
        for n in [0usize, 1, 63, 64, 65, 150, 500] {
            for threads in [1usize, 2, 7, 64] {
                let blocks = source_blocks(n, threads);
                let mut all = Vec::new();
                for b in &blocks {
                    assert_eq!(b.start % 64, 0, "n {n} threads {threads}");
                    all.extend(b.clone());
                }
                assert_eq!(all, (0..n as NodeId).collect::<Vec<_>>());
                assert!(blocks.len() <= threads.max(1));
                assert!(blocks.len() <= n.div_ceil(64).max(1));
            }
        }
    }

    #[test]
    fn cache_blocks_iterator_matches_source_blocks() {
        for n in [1usize, 63, 64, 1000, 1024, 1025, 1100, 5000] {
            let collected: Vec<_> = cache_blocks(n).collect();
            assert_eq!(collected, source_blocks(n, cache_block_count(n)), "n {n}");
        }
    }

    #[test]
    fn block_interiors_are_chunk_aligned_and_cover_exactly() {
        // Satellite of the kernel layer: every schedule's interior blocks
        // span whole 64-byte kernel chunks (multiples of 64·CHUNK_WORDS
        // lanes), only the final tail is ragged, and the union still
        // exactly covers 0..n — for source_blocks, block_schedule AND the
        // probe split, across thread counts.
        let chunk_lanes = (64 * CHUNK_WORDS) as u32;
        let check = |blocks: &[Range<NodeId>], lo: u32, n: usize, tag: &str| {
            let mut next = lo;
            for (i, b) in blocks.iter().enumerate() {
                assert_eq!(b.start, next, "{tag}: gapless at block {i}");
                assert!(!b.is_empty(), "{tag}: empty block {i}");
                if i + 1 < blocks.len() {
                    assert_eq!(
                        (b.end - b.start) % chunk_lanes,
                        0,
                        "{tag}: interior block {i} not chunk-aligned"
                    );
                }
                next = b.end;
            }
            assert_eq!(next as usize, n, "{tag}: union must cover 0..n");
        };
        for n in [1usize, 63, 64, 65, 150, 511, 512, 513, 1100, 4097, 100_000] {
            for threads in [1usize, 2, 3, 5, 8, 64] {
                let blocks = source_blocks(n, threads);
                check(&blocks, 0, n, "source_blocks");
                let sched: Vec<_> = block_schedule(n, threads).collect();
                assert_eq!(sched, blocks, "block_schedule must match source_blocks");
                let (probe, rest) = probe_blocks(n, threads);
                assert_eq!(probe, 0..64.min(n) as NodeId);
                if n > 64 {
                    check(&rest, 64, n, "probe_blocks rest");
                } else {
                    assert!(rest.iter().all(Range::is_empty) || rest.is_empty());
                }
            }
        }
    }

    #[test]
    fn multi_block_full_width_sweep_matches_scalar() {
        // More than BLOCK_WORDS·64 = 1024 lanes in ONE sweep call, so the
        // internal column-block machinery (per-block epoch stamping,
        // commit ordering, block saturation counters) actually runs —
        // every entry point pre-shards to ≤ 16-word blocks, so only a
        // direct full-width call exercises it.
        let n = 1100usize;
        let mut rng = SeedSequence::new(13).rng(0);
        let g = generators::gnp(n, 6.0 / n as f64, false, &mut rng);
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, 300)]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 300).unwrap();
        let mut sweeper = WideSweeper::new();
        let mut wide = vec![0; n * n];
        let stats = sweeper.arrivals_into(&tn, 0..n as NodeId, 0, &mut wide);
        let mut reached = 0usize;
        for (s, chunk) in wide.chunks(n).enumerate() {
            let oracle = foremost(&tn, s as NodeId, 0);
            assert_eq!(chunk, oracle.arrivals(), "row {s}");
            reached += oracle.reached_count();
        }
        assert_eq!(stats.reached_bits, reached);
        // A dense multi-block sweep saturates block by block: K_1100 with
        // every edge always available completes in one visited bucket.
        let k = generators::clique(1100, false);
        let m = k.num_edges();
        let labels = LabelAssignment::from_vecs(vec![vec![1, 2, 3]; m]).unwrap();
        let ktn = TemporalNetwork::new(k, labels, 3).unwrap();
        let kstats = sweeper.sweep(&ktn, 0..1100, 0, |_, _, _, _| {});
        assert!(kstats.all_reached(1100));
        assert_eq!(kstats.buckets_visited, 1);
    }

    #[test]
    fn probe_blocks_cover_all_sources() {
        for n in [1usize, 63, 64, 65, 150, 500] {
            for threads in [1usize, 3, 16] {
                let (probe, rest) = probe_blocks(n, threads);
                assert_eq!(probe.start, 0);
                assert_eq!(probe.end as usize, 64.min(n));
                let mut all: Vec<NodeId> = probe.collect();
                for b in &rest {
                    assert_eq!(b.start % 64, 0);
                    all.extend(b.clone());
                }
                assert_eq!(all, (0..n as NodeId).collect::<Vec<_>>());
                assert!(rest.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn reach_word_exposes_the_closure() {
        let g = generators::path(3);
        let labels = LabelAssignment::from_vecs(vec![vec![1], vec![2]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 2).unwrap();
        let mut sweeper = WideSweeper::new();
        sweeper.sweep(&tn, 0..3, 0, |_, _, _, _| {});
        assert_eq!(sweeper.words_per_row(), 1);
        assert_eq!(sweeper.reach_word(2, 0), 0b111);
        assert_eq!(sweeper.reach_word(0, 0), 0b011);
    }

    #[test]
    fn sweeper_reuse_across_networks_is_clean() {
        let mut sweeper = WideSweeper::new();
        let tn1 = random_network(1, 90, false, 90);
        let mut a1 = vec![0; 90 * 90];
        sweeper.arrivals_into(&tn1, 0..90, 0, &mut a1);
        let tn2 = random_network(2, 33, true, 33);
        let mut a2 = vec![0; 33 * 33];
        sweeper.arrivals_into(&tn2, 0..33, 0, &mut a2);
        assert_eq!(a2, scalar_arrivals(&tn2, 0));
        let mut a1b = vec![0; 90 * 90];
        sweeper.arrivals_into(&tn1, 0..90, 0, &mut a1b);
        assert_eq!(a1, a1b);
    }

    #[test]
    fn empty_sources_are_a_no_op() {
        let tn = random_network(4, 10, false, 10);
        let mut sweeper = WideSweeper::new();
        let stats = sweeper.sweep(&tn, 0..0, 0, |_, _, _, _| panic!("no events"));
        assert_eq!(stats.lanes, 0);
        assert_eq!(stats.reached_bits, 0);
        assert_eq!(
            stats.buckets_visited, 0,
            "saturated before the first bucket"
        );
        assert!(stats.all_reached(10), "0 lanes trivially cover 0 bits");
    }

    #[test]
    fn directed_arcs_are_one_way() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let tn = TemporalNetwork::new(g, LabelAssignment::single(vec![1, 2]).unwrap(), 2).unwrap();
        let mut out = vec![0; 9];
        WideSweeper::new().arrivals_into(&tn, 0..3, 0, &mut out);
        assert_eq!(out, scalar_arrivals(&tn, 0));
        assert_eq!(out[6..9], [NEVER, NEVER, 0]); // 2 reaches only itself
    }

    #[test]
    fn engine_dispatch_constants() {
        assert_eq!(engine_for(WIDE_CROSSOVER - 1), EngineKind::Batch);
        assert_eq!(engine_for(WIDE_CROSSOVER), EngineKind::Wide);
        assert_eq!(EngineKind::Scalar.name(), "scalar");
        assert_eq!(EngineKind::Batch.name(), "batch");
        assert_eq!(EngineKind::Wide.name(), "wide");
        assert_eq!(EngineKind::Sparse.name(), "sparse");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let tn = random_network(1, 5, false, 5);
        let _ = WideSweeper::new().sweep(&tn, 3..9, 0, |_, _, _, _| {});
    }
}
