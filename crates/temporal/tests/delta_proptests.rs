//! Differential property tests for the retract-and-replay cursor: after
//! any sequence of random single-label moves — up or down in time,
//! multi-label edges, directed and undirected topologies, ragged
//! (non-multiple-of-64) vertex counts — the maintained closure must be
//! **bit-identical** to a cold all-source sweep of the mutated network,
//! whichever engine recorded it (wide, event-driven sparse, or the
//! batch-sized dispatch path of [`SweepScratch::record_delta`]), and
//! must agree with the dispatching [`ReachabilityMatrix`] at any thread
//! count. A fully reverted move sequence must restore the recorded
//! closure exactly.

use ephemeral_graph::generators;
use ephemeral_rng::{RandomSource, SeedSequence};
use ephemeral_temporal::closure::ReachabilityMatrix;
use ephemeral_temporal::delta::DeltaCursor;
use ephemeral_temporal::sparse::SparseSweeper;
use ephemeral_temporal::wide::{SweepScratch, WideSweeper};
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time};
use proptest::prelude::*;

/// A random temporal network: `gnp` topology, `1..=max_labels` uniform
/// labels per edge — multi-label edges exercise the bucket surgery of
/// [`TemporalNetwork::move_label`] (a move may leave a bucket nonempty
/// or land next to a sibling label).
fn random_network(
    seed: u64,
    n: usize,
    p: f64,
    directed: bool,
    max_labels: usize,
    lifetime: Time,
) -> TemporalNetwork {
    let mut rng = SeedSequence::new(seed).rng(29);
    let g = generators::gnp(n, p, directed, &mut rng);
    let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
        let k = 1 + rng.bounded_u64(max_labels as u64) as usize;
        (0..k).map(|_| rng.range_u32(1, lifetime)).collect()
    })
    .unwrap();
    TemporalNetwork::new(g, labels, lifetime).unwrap()
}

/// Draw one random (edge, existing label, fresh label) proposal.
fn random_move(
    tn: &TemporalNetwork,
    rng: &mut impl RandomSource,
) -> (ephemeral_graph::EdgeId, Time, Time) {
    let e = rng.index(tn.graph().num_edges()) as ephemeral_graph::EdgeId;
    let labels = tn.labels(e);
    let from = labels[rng.index(labels.len())];
    let to = rng.range_u32(1, tn.lifetime());
    (e, from, to)
}

/// The maintained closure must equal a cold wide sweep of `tn`, word
/// for word, plus the reach total and the last arrival. (Wide-vs-sparse
/// -vs-batch-vs-scalar equivalence is pinned separately by the engine
/// proptests, so one cold oracle suffices here.)
fn assert_matches_cold(cursor: &DeltaCursor, tn: &TemporalNetwork) {
    let n = tn.num_nodes();
    let mut cold = WideSweeper::new();
    let stats = cold.sweep(tn, 0..n as u32, 0, |_, _, _, _| {});
    let maintained = cursor.stats();
    prop_assert_eq!(maintained.reached_bits, stats.reached_bits);
    prop_assert_eq!(maintained.last_arrival, stats.last_arrival);
    prop_assert_eq!(cursor.words_per_row(), n.div_ceil(64));
    for v in 0..n as u32 {
        for w in 0..cursor.words_per_row() {
            prop_assert_eq!(
                cursor.reach_word(v, w),
                cold.reach_word(v, w),
                "row {} word {}",
                v,
                w
            );
        }
    }
}

/// Fixed-seed regression pins, added when the retract/replay word ops
/// moved into [`ephemeral_temporal::kernels`]: named seeds whose
/// maintained closures must stay bit-identical to the cold oracle — and
/// to the dispatching matrix at 1/2/8 threads — after a fixed move
/// sequence, deterministically.
#[test]
fn pinned_seeds_track_moves_bit_identically_across_threads() {
    for (seed, n, p, directed, lifetime, steps) in [
        (0x00FE_ED28_u64, 90usize, 0.05f64, false, 60u32, 15usize),
        (0x00FE_ED29, 120, 0.03, true, 80, 25),
    ] {
        let mut tn = random_network(seed, n, p, directed, 2, lifetime);
        let mut scratch = SweepScratch::new();
        scratch.record_delta(&tn);
        let mut rng = SeedSequence::new(seed).rng(43);
        if tn.graph().num_edges() > 0 {
            for _ in 0..steps {
                let (e, from, to) = random_move(&tn, &mut rng);
                scratch.delta.apply_label_move(&mut tn, e, from, to);
            }
        }
        let mut cold = WideSweeper::new();
        let stats = cold.sweep(&tn, 0..n as u32, 0, |_, _, _, _| {});
        assert_eq!(scratch.delta.stats().reached_bits, stats.reached_bits);
        for v in 0..n as u32 {
            for w in 0..scratch.delta.words_per_row() {
                assert_eq!(
                    scratch.delta.reach_word(v, w),
                    cold.reach_word(v, w),
                    "seed {seed:#x} row {v} word {w}"
                );
            }
        }
        for threads in [1usize, 2, 8] {
            let matrix = ReachabilityMatrix::compute(&tn, threads);
            for s in 0..n as u32 {
                for v in 0..n as u32 {
                    let bit = scratch.delta.reach_word(v, s as usize / 64) >> (s % 64) & 1 == 1;
                    assert_eq!(
                        matrix.reaches(s, v),
                        bit,
                        "seed {seed:#x} threads {threads} pair ({s}, {v})"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Core contract: whatever engine recorded the sweep, a random
    /// sequence of label moves replayed differentially lands on the
    /// closure a cold sweep of the mutated network computes.
    #[test]
    fn delta_closures_track_random_move_sequences(
        seed: u64,
        n in 2usize..150,
        p in 0.01f64..0.3,
        directed: bool,
        max_labels in 1usize..4,
        lifetime in 2u32..90,
        engine in 0usize..3,
        steps in 1usize..40,
    ) {
        let mut tn = random_network(seed, n, p, directed, max_labels, lifetime);
        let mut scratch = SweepScratch::new();
        match engine {
            0 => { scratch.delta.record_from(&tn, &mut WideSweeper::new()); }
            1 => { scratch.delta.record_from(&tn, &mut SparseSweeper::new()); }
            _ => { scratch.record_delta(&tn); }
        }
        let mut rng = SeedSequence::new(seed).rng(31);
        if tn.graph().num_edges() > 0 {
            for _ in 0..steps {
                let (e, from, to) = random_move(&tn, &mut rng);
                scratch.delta.apply_label_move(&mut tn, e, from, to);
            }
        }
        assert_matches_cold(&scratch.delta, &tn);
    }

    /// The cursor agrees with the density-dispatching all-pairs closure
    /// at every thread count (the 1/2/8-worker determinism contract) —
    /// mind the transposed layouts: matrix rows are sources, cursor
    /// rows are targets carrying source bits.
    #[test]
    fn delta_closures_agree_with_the_dispatching_matrix_across_threads(
        seed: u64,
        n in 2usize..100,
        p in 0.02f64..0.25,
        directed: bool,
        lifetime in 2u32..60,
        steps in 1usize..25,
    ) {
        let mut tn = random_network(seed, n, p, directed, 2, lifetime);
        let mut scratch = SweepScratch::new();
        scratch.record_delta(&tn);
        let mut rng = SeedSequence::new(seed).rng(37);
        if tn.graph().num_edges() > 0 {
            for _ in 0..steps {
                let (e, from, to) = random_move(&tn, &mut rng);
                scratch.delta.apply_label_move(&mut tn, e, from, to);
            }
        }
        for threads in [1usize, 2, 8] {
            let matrix = ReachabilityMatrix::compute(&tn, threads);
            for s in 0..n as u32 {
                for v in 0..n as u32 {
                    let bit = scratch.delta.reach_word(v, s as usize / 64)
                        >> (s % 64) & 1 == 1;
                    prop_assert_eq!(
                        matrix.reaches(s, v), bit,
                        "threads {} pair ({}, {})", threads, s, v
                    );
                }
            }
        }
    }

    /// Applying a move sequence and then reverting it in reverse order
    /// restores the recorded closure word for word — the log splicing
    /// loses nothing either direction.
    #[test]
    fn reverted_sequences_restore_the_recorded_closure(
        seed: u64,
        n in 2usize..120,
        p in 0.02f64..0.25,
        directed: bool,
        max_labels in 1usize..3,
        lifetime in 2u32..70,
        steps in 1usize..20,
    ) {
        let mut tn = random_network(seed, n, p, directed, max_labels, lifetime);
        let mut scratch = SweepScratch::new();
        let (recorded, _) = scratch.record_delta(&tn);
        let before: Vec<Vec<u64>> = (0..n as u32)
            .map(|v| (0..scratch.delta.words_per_row())
                .map(|w| scratch.delta.reach_word(v, w))
                .collect())
            .collect();
        let mut rng = SeedSequence::new(seed).rng(41);
        let mut applied = Vec::new();
        if tn.graph().num_edges() > 0 {
            for _ in 0..steps {
                let (e, from, to) = random_move(&tn, &mut rng);
                if scratch.delta.apply_label_move(&mut tn, e, from, to).is_some() {
                    applied.push((e, from, to));
                }
            }
        }
        for &(e, from, to) in applied.iter().rev() {
            prop_assert!(
                scratch.delta.apply_label_move(&mut tn, e, to, from).is_some(),
                "reverting an applied move is always valid"
            );
        }
        prop_assert_eq!(scratch.delta.stats().reached_bits, recorded.reached_bits);
        prop_assert_eq!(scratch.delta.stats().last_arrival, recorded.last_arrival);
        for v in 0..n as u32 {
            for (w, &word) in before[v as usize].iter().enumerate() {
                prop_assert_eq!(
                    scratch.delta.reach_word(v, w), word,
                    "row {} word {}", v, w
                );
            }
        }
    }
}
