//! Differential property tests: the bit-parallel multi-source engine must
//! be **bit-identical** to per-source scalar `foremost` sweeps — across
//! random graphs, label densities, lifetimes, directedness, start times and
//! non-multiple-of-64 source counts. The scalar sweep is the oracle; every
//! engine consumer (closure, distances, diameter, connectivity) is pinned
//! against it here.

use ephemeral_graph::generators;
use ephemeral_graph::NodeId;
use ephemeral_rng::{RandomSource, SeedSequence};
use ephemeral_temporal::closure::ReachabilityMatrix;
use ephemeral_temporal::distance::{
    all_pairs_temporal_distances, instance_temporal_diameter, instance_temporal_diameter_reusing,
};
use ephemeral_temporal::engine::{batch_count, batch_range, BatchSweeper, MAX_LANES};
use ephemeral_temporal::foremost::foremost;
use ephemeral_temporal::reachability::is_temporally_connected;
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time, NEVER};
use proptest::prelude::*;

/// A random temporal network: `gnp` topology, `1..=max_labels` uniform
/// labels per edge, arbitrary lifetime — the whole parameter space the
/// engine claims to cover.
fn random_network(
    seed: u64,
    n: usize,
    p: f64,
    directed: bool,
    max_labels: usize,
    lifetime: Time,
) -> TemporalNetwork {
    let mut rng = SeedSequence::new(seed).rng(42);
    let g = generators::gnp(n, p, directed, &mut rng);
    let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
        let k = 1 + rng.bounded_u64(max_labels as u64) as usize;
        (0..k).map(|_| rng.range_u32(1, lifetime)).collect()
    })
    .unwrap();
    TemporalNetwork::new(g, labels, lifetime).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Core contract: per-(source, target) arrivals from one batched sweep
    /// equal the scalar oracle's, for arbitrary source subsets (any count
    /// in 1..=64, duplicates included) and arbitrary start times.
    #[test]
    fn batch_arrivals_are_bit_identical_to_scalar(
        seed: u64,
        n in 2usize..90,
        p in 0.01f64..0.4,
        directed: bool,
        max_labels in 1usize..4,
        lifetime in 1u32..80,
        lanes in 1usize..=MAX_LANES,
        start in 0u32..6,
    ) {
        let tn = random_network(seed, n, p, directed, max_labels, lifetime);
        let mut rng = SeedSequence::new(seed).rng(7);
        let sources: Vec<NodeId> = (0..lanes)
            .map(|_| rng.bounded_u32(n as u32))
            .collect();
        let mut got = vec![0 as Time; lanes * n];
        BatchSweeper::new().arrivals_into(&tn, &sources, start, &mut got);
        for (lane, &s) in sources.iter().enumerate() {
            let oracle = foremost(&tn, s, start);
            prop_assert_eq!(
                &got[lane * n..(lane + 1) * n],
                oracle.arrivals(),
                "lane {} source {}", lane, s
            );
        }
    }

    /// The closure wrapper equals a scalar reachability loop, across word
    /// and batch boundaries.
    #[test]
    fn closure_matches_scalar_reach(
        seed: u64,
        n in 1usize..140,
        p in 0.01f64..0.2,
        directed: bool,
    ) {
        let tn = random_network(seed, n, p, directed, 2, (n as Time).max(2));
        let m = ReachabilityMatrix::compute(&tn, 2);
        for s in 0..n as NodeId {
            let oracle = foremost(&tn, s, 0);
            let mut count = 0;
            for t in 0..n as NodeId {
                prop_assert_eq!(m.reaches(s, t), oracle.reached(t), "({}, {})", s, t);
                count += usize::from(oracle.reached(t));
            }
            prop_assert_eq!(m.out_count(s), count);
        }
    }

    /// The all-pairs distance matrix is row-for-row the scalar sweep, and
    /// the instance diameter (engine stats, no matrix) agrees with a brute
    /// reduction of that matrix — including the parallel and the
    /// sweeper-reusing sequential paths.
    #[test]
    fn distances_and_diameter_match_scalar(
        seed: u64,
        n in 1usize..100,
        p in 0.02f64..0.3,
        directed: bool,
        max_labels in 1usize..3,
    ) {
        let lifetime = (n as Time).max(3);
        let tn = random_network(seed, n, p, directed, max_labels, lifetime);
        let matrix = all_pairs_temporal_distances(&tn, 2);
        let mut max_finite: Time = 0;
        let mut missing = 0usize;
        for s in 0..n as NodeId {
            let oracle = foremost(&tn, s, 0);
            prop_assert_eq!(matrix.row(s), oracle.arrivals(), "row {}", s);
            for (v, &a) in oracle.arrivals().iter().enumerate() {
                if a == NEVER {
                    missing += 1;
                } else if v != s as usize {
                    max_finite = max_finite.max(a);
                }
            }
        }
        let d = instance_temporal_diameter(&tn, 2);
        prop_assert_eq!(d.max_finite, max_finite);
        prop_assert_eq!(d.unreachable_pairs, missing);
        let mut sweeper = BatchSweeper::new();
        prop_assert_eq!(d, instance_temporal_diameter_reusing(&tn, &mut sweeper));
        prop_assert_eq!(
            is_temporally_connected(&tn, 2),
            missing == 0 || n <= 1
        );
    }

    /// Batch bookkeeping: the helpers partition 0..n exactly, with every
    /// batch at most 64 wide and only the last one ragged.
    #[test]
    fn batch_helpers_partition_the_sources(n in 0usize..500) {
        let mut all = Vec::new();
        for b in 0..batch_count(n) {
            let r = batch_range(n, b);
            prop_assert!(r.len() <= MAX_LANES);
            if b + 1 < batch_count(n) {
                prop_assert_eq!(r.len(), MAX_LANES);
            }
            all.extend(r);
        }
        prop_assert_eq!(all, (0..n as NodeId).collect::<Vec<_>>());
    }

    /// In-place label replacement is indistinguishable from fresh
    /// construction as seen by the engine.
    #[test]
    fn replace_assignment_then_sweep_matches_fresh_network(
        seed: u64,
        n in 2usize..70,
        p in 0.05f64..0.4,
    ) {
        let lifetime = (n as Time).max(2);
        let mut tn = random_network(seed, n, p, false, 2, lifetime);
        let mut rng = SeedSequence::new(seed ^ 0xABCD).rng(0);
        let fresh_labels = LabelAssignment::from_fn(tn.graph().num_edges(), |_| {
            vec![rng.range_u32(1, lifetime)]
        })
        .unwrap();
        let fresh = TemporalNetwork::new(
            tn.graph().clone(),
            fresh_labels.clone(),
            lifetime,
        )
        .unwrap();
        tn.replace_assignment(fresh_labels).unwrap();
        let a = all_pairs_temporal_distances(&tn, 1);
        let b = all_pairs_temporal_distances(&fresh, 1);
        prop_assert_eq!(a, b);
    }
}
