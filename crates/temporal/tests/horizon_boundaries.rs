//! Boundary audit of the horizon/occupied-index plumbing: every engine's
//! `sweep_with_horizon` (batched, wide, sparse) must match the scalar
//! `foremost_with_horizon` oracle **lane for lane** at the degenerate
//! corners — `horizon == 0`, `horizon ≤ start_time`, `horizon` beyond the
//! lifetime (including `Time::MAX`), `start_time` at and beyond the
//! lifetime — and `TemporalNetwork::occupied_between` must agree with a
//! brute filter at the same corners. These are the windows the sweep
//! engines derive their bucket walks from; an off-by-one here silently
//! truncates or extends every sweep.

use ephemeral_graph::NodeId;
use ephemeral_rng::{RandomSource, SeedSequence};
use ephemeral_temporal::engine::BatchSweeper;
use ephemeral_temporal::foremost::foremost_with_horizon;
use ephemeral_temporal::sparse::SparseSweeper;
use ephemeral_temporal::wide::{FrontierEngine, WideSweeper};
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time, NEVER};

/// A 28-vertex network with two labels per edge over an uneven lifetime,
/// so boundaries land both on occupied and on empty buckets.
fn network(seed: u64, lifetime: Time) -> TemporalNetwork {
    let mut rng = SeedSequence::new(seed).rng(3);
    let g = ephemeral_graph::generators::gnp(28, 0.18, false, &mut rng);
    let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
        vec![rng.range_u32(1, lifetime), rng.range_u32(1, lifetime)]
    })
    .unwrap();
    TemporalNetwork::new(g, labels, lifetime).unwrap()
}

/// All-pairs arrivals of the scalar horizon oracle.
fn oracle(tn: &TemporalNetwork, start: Time, horizon: Time) -> Vec<Time> {
    let n = tn.num_nodes();
    let mut out = Vec::with_capacity(n * n);
    for s in 0..n as NodeId {
        out.extend_from_slice(foremost_with_horizon(tn, s, start, horizon).arrivals());
    }
    out
}

/// All-pairs arrivals of a full-width engine under a horizon.
fn frontier<S: FrontierEngine>(tn: &TemporalNetwork, start: Time, horizon: Time) -> Vec<Time> {
    let n = tn.num_nodes();
    let mut out = vec![NEVER; n * n];
    for s in 0..n {
        out[s * n + s] = start;
    }
    S::default().sweep_with_horizon(tn, 0..n as NodeId, start, horizon, |v, w, mut fresh, t| {
        while fresh != 0 {
            let lane = w * 64 + fresh.trailing_zeros() as usize;
            out[lane * n + v as usize] = t;
            fresh &= fresh - 1;
        }
    });
    out
}

/// All-pairs arrivals of the 64-lane batched engine under a horizon.
fn batched(tn: &TemporalNetwork, start: Time, horizon: Time) -> Vec<Time> {
    let n = tn.num_nodes();
    let sources: Vec<NodeId> = (0..n as NodeId).collect();
    let mut out = vec![NEVER; n * n];
    for s in 0..n {
        out[s * n + s] = start;
    }
    BatchSweeper::new().sweep_with_horizon(tn, &sources, start, horizon, |v, mut lanes, t| {
        while lanes != 0 {
            let lane = lanes.trailing_zeros() as usize;
            out[lane * n + v as usize] = t;
            lanes &= lanes - 1;
        }
    });
    out
}

/// The boundary grid every engine is pinned on: (start_time, horizon)
/// pairs covering horizon 0, horizon at/below the start, horizon at both
/// ends of the lifetime, horizon far beyond it, and starts at and beyond
/// the lifetime.
fn boundary_points(lifetime: Time) -> Vec<(Time, Time)> {
    vec![
        (0, 0),                           // horizon == 0: no labels usable at all
        (0, 1),                           // only the first bucket
        (0, lifetime),                    // the full sweep
        (0, lifetime + 7),                // horizon beyond the lifetime: clamps
        (0, Time::MAX),                   // extreme horizon: clamps
        (3, 3),                           // start_time == horizon: empty window
        (5, 3),                           // start_time > horizon: empty window
        (lifetime - 1, lifetime),         // one-bucket window at the end
        (lifetime, lifetime),             // start at the lifetime: nothing left
        (lifetime + 9, Time::MAX),        // start beyond the lifetime
        (Time::MAX, Time::MAX),           // saturating start
        (lifetime / 2, lifetime / 2 + 1), // one mid-lifetime bucket
    ]
}

#[test]
fn engines_match_the_scalar_oracle_at_every_boundary() {
    for (seed, lifetime) in [(1u64, 24u32), (2, 97)] {
        let tn = network(seed, lifetime);
        for &(start, horizon) in &boundary_points(lifetime) {
            let want = oracle(&tn, start, horizon);
            assert_eq!(
                batched(&tn, start, horizon),
                want,
                "batch: lifetime {lifetime} start {start} horizon {horizon}"
            );
            assert_eq!(
                frontier::<WideSweeper>(&tn, start, horizon),
                want,
                "wide: lifetime {lifetime} start {start} horizon {horizon}"
            );
            assert_eq!(
                frontier::<SparseSweeper>(&tn, start, horizon),
                want,
                "sparse: lifetime {lifetime} start {start} horizon {horizon}"
            );
        }
    }
}

#[test]
fn occupied_between_matches_brute_filter_at_the_corners() {
    for (seed, lifetime) in [(3u64, 24u32), (4, 97)] {
        let tn = network(seed, lifetime);
        let brute = |after: Time, upto: Time| -> Vec<Time> {
            (1..=tn.lifetime())
                .filter(|&t| !tn.edges_at(t).is_empty())
                .filter(|&t| t > after && t <= upto.min(tn.lifetime()))
                .collect()
        };
        for &(after, upto) in &[
            (0, 0),
            (0, 1),
            (0, lifetime),
            (0, lifetime + 1),
            (0, Time::MAX),
            (3, 3),
            (5, 3),
            (lifetime - 1, lifetime),
            (lifetime, lifetime),
            (lifetime, Time::MAX),
            (lifetime + 9, Time::MAX),
            (Time::MAX, Time::MAX),
            (Time::MAX, 0),
        ] {
            assert_eq!(
                tn.occupied_between(after, upto),
                brute(after, upto).as_slice(),
                "after {after} upto {upto}"
            );
        }
    }
}

#[test]
fn horizon_zero_and_inverted_windows_report_no_arrivals() {
    // The degenerate windows must leave every off-diagonal pair unreached
    // and visit zero buckets — on all three engines.
    let tn = network(5, 40);
    let n = tn.num_nodes();
    for (start, horizon) in [(0u32, 0u32), (7, 7), (9, 2), (40, 40), (41, 60)] {
        let sources: Vec<NodeId> = (0..n as NodeId).collect();
        let stats =
            BatchSweeper::new().sweep_with_horizon(&tn, &sources, start, horizon, |_, _, _| {
                panic!("batch: no arrivals possible in an empty window")
            });
        assert_eq!(stats.reached_bits, n, "batch: diagonal only");
        let wide = WideSweeper::new().sweep_with_horizon(
            &tn,
            0..n as NodeId,
            start,
            horizon,
            |_, _, _, _| panic!("wide: no arrivals possible in an empty window"),
        );
        assert_eq!(wide.reached_bits, n);
        assert_eq!(wide.buckets_visited, 0, "wide: empty window visits nothing");
        let sparse = SparseSweeper::new().sweep_with_horizon(
            &tn,
            0..n as NodeId,
            start,
            horizon,
            |_, _, _, _| panic!("sparse: no arrivals possible in an empty window"),
        );
        assert_eq!(sparse.reached_bits, n);
        assert_eq!(sparse.buckets_visited, 0);
    }
}
