//! Differential property tests for the word-kernel layer: every kernel in
//! [`ephemeral_temporal::kernels`] must be **bit-identical** to its naive
//! scalar reference in [`kernels::scalar`] — across ragged lengths
//! `0..257` (every unroll-remainder shape), every slab misalignment
//! offset (kernels run on arbitrary subslices, not just aligned bases),
//! random bit patterns, and — for the sorted-`u32` merge kernels — skew
//! ratios on both sides of [`kernels::GALLOP_FACTOR`], so the galloping
//! and branch-light linear paths are both pinned to the same contract.

use ephemeral_temporal::kernels::{self, scalar, AlignedLanes, AlignedSlab, SLAB_ALIGN_BYTES};
use proptest::prelude::*;

/// A deterministic word pattern mixing dense, sparse and structured runs
/// so carries/tails see both all-zero and all-one words.
fn words_from_seed(seed: u64, len: usize) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            match i % 7 {
                0 => 0,
                1 => !0,
                2 => state & 0x8000_0000_0000_0001,
                _ => state,
            }
        })
        .collect()
}

/// An aligned slab pre-filled with `pattern`, so kernels can be exercised
/// on the subslice `[off..off + len]` — every misalignment offset within
/// one chunk.
fn slab_with(pattern: &[u64]) -> AlignedSlab {
    let mut s = AlignedSlab::new();
    s.resize_zeroed(pattern.len());
    s.words_mut().copy_from_slice(pattern);
    s
}

/// A sorted duplicate-free lane list of roughly `len` lanes.
fn sorted_lanes(seed: u64, len: usize, spread: u32) -> Vec<u32> {
    let mut out: Vec<u32> = words_from_seed(seed, len)
        .into_iter()
        .map(|w| (w % u64::from(spread.max(1))) as u32)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `ornot_accumulate` equals the per-word reference (dst bits and the
    /// any-fold) for every ragged length and misalignment offset.
    #[test]
    fn ornot_accumulate_matches_scalar(
        seed: u64,
        len in 0usize..257,
        off in 0usize..8,
    ) {
        let a = words_from_seed(seed ^ 1, off + len);
        let b = words_from_seed(seed ^ 2, off + len);
        let d0 = words_from_seed(seed ^ 3, off + len);
        let mut s1 = slab_with(&d0);
        let mut d2 = d0[off..].to_vec();
        let any1 = kernels::ornot_accumulate(&mut s1.words_mut()[off..], &a[off..], &b[off..]);
        let any2 = scalar::ornot_accumulate(&mut d2, &a[off..], &b[off..]);
        prop_assert_eq!(&s1.words()[off..], &d2[..]);
        prop_assert_eq!(&s1.words()[..off], &d0[..off], "prefix untouched");
        prop_assert_eq!(any1, any2);
    }

    /// `commit_fresh` equals the reference: same fresh masks in the same
    /// ascending word order, same popcount total, `before` identical, and
    /// `delta` fully zeroed — for every length and offset.
    #[test]
    fn commit_fresh_matches_scalar(
        seed: u64,
        len in 0usize..257,
        off in 0usize..8,
    ) {
        let delta0 = words_from_seed(seed ^ 5, off + len);
        let before0 = words_from_seed(seed ^ 6, off + len);
        let mut ds = slab_with(&delta0);
        let mut bs = slab_with(&before0);
        let (mut d2, mut b2) = (delta0[off..].to_vec(), before0[off..].to_vec());
        let (mut e1, mut e2) = (Vec::new(), Vec::new());
        let t1 = kernels::commit_fresh(
            &mut ds.words_mut()[off..],
            &mut bs.words_mut()[off..],
            |w, f| e1.push((w, f)),
        );
        let t2 = scalar::commit_fresh(&mut d2, &mut b2, |w, f| e2.push((w, f)));
        prop_assert_eq!(&ds.words()[off..], &d2[..]);
        prop_assert_eq!(&bs.words()[off..], &b2[..]);
        prop_assert_eq!(&e1, &e2);
        prop_assert_eq!(t1, t2);
        prop_assert!(ds.words()[off..].iter().all(|&w| w == 0), "delta zeroed");
        prop_assert!(e1.windows(2).all(|p| p[0].0 < p[1].0), "ascending words");
    }

    /// `popcount_words` and `nonzero_word_mask` equal brute scans on every
    /// ragged length and offset.
    #[test]
    fn popcount_and_occupancy_match_brute(
        seed: u64,
        len in 0usize..257,
        off in 0usize..8,
    ) {
        let w = words_from_seed(seed, off + len);
        let row = &w[off..];
        prop_assert_eq!(kernels::popcount_words(row), scalar::popcount_words(row));
        let mut occ = vec![0u64; len.div_ceil(64).max(1)];
        // Pre-set one stray bit: the kernel must OR, never clear.
        occ[0] = 1;
        kernels::nonzero_word_mask(row, &mut occ);
        for (i, &word) in row.iter().enumerate() {
            let set = occ[i / 64] >> (i % 64) & 1 == 1;
            prop_assert_eq!(set, word != 0 || i == 0, "word {}", i);
        }
    }

    /// Lane-bit helpers roundtrip against a brute bitset: `set_lane_bits`
    /// + `for_each_set_lane` recover exactly the distinct lanes in
    /// ascending order, and `clear_lane_bits` restores all-zero.
    #[test]
    fn lane_bit_helpers_match_brute(
        seed: u64,
        len in 0usize..200,
        spread in 1u32..1000,
    ) {
        let lanes = sorted_lanes(seed, len, spread);
        let words = (spread as usize).div_ceil(64).max(1);
        let mut row = vec![0u64; words];
        kernels::set_lane_bits(&mut row, &lanes);
        prop_assert_eq!(kernels::popcount_words(&row), lanes.len());
        let mut seen = Vec::new();
        kernels::for_each_set_lane(&row, |l| seen.push(l as u32));
        prop_assert_eq!(&seen, &lanes);
        kernels::clear_lane_bits(&mut row, &lanes);
        prop_assert!(row.iter().all(|&w| w == 0));
    }

    /// `merge_into_emitting` equals the reference union + exclusives +
    /// word-grouped masks on both sides of the gallop threshold (the skew
    /// parameters push `d.len() / src.len()` through `GALLOP_FACTOR`).
    #[test]
    fn merge_into_matches_references_across_skews(
        seed: u64,
        d_len in 0usize..300,
        s_len in 0usize..40,
        spread in 1u32..2000,
    ) {
        let d = sorted_lanes(seed ^ 0xA, d_len, spread);
        let s = sorted_lanes(seed ^ 0xB, s_len, spread);
        for (d, s) in [(&d, &s), (&s, &d)] {
            let mut out = Vec::new();
            let mut got = Vec::new();
            let fresh = kernels::merge_into_emitting(d, s, &mut out, 3, 9, &mut |v, w, m, t| {
                assert_eq!((v, t), (3, 9));
                got.push((w, m));
            });
            let excl = scalar::exclusives(d, s);
            prop_assert_eq!(&out, &scalar::merge_union(d, s));
            prop_assert_eq!(fresh as usize, excl.len());
            prop_assert_eq!(&got, &scalar::grouped_masks(&excl));
        }
    }

    /// `merge_dual_emitting` equals the reference union with each side's
    /// exclusives emitted to the *other* endpoint, word-grouped.
    #[test]
    fn merge_dual_matches_references(
        seed: u64,
        a_len in 0usize..200,
        b_len in 0usize..200,
        spread in 1u32..2000,
    ) {
        let a = sorted_lanes(seed ^ 0xC, a_len, spread);
        let b = sorted_lanes(seed ^ 0xD, b_len, spread);
        let mut out = Vec::new();
        let (mut got_u, mut got_v) = (Vec::new(), Vec::new());
        let (fu, fv) = kernels::merge_dual_emitting(&a, &b, &mut out, 1, 2, 7, &mut |v, w, m, _| {
            if v == 1 { got_u.push((w, m)); } else { got_v.push((w, m)); }
        });
        let (bu, av) = (scalar::exclusives(&a, &b), scalar::exclusives(&b, &a));
        prop_assert_eq!(&out, &scalar::merge_union(&a, &b));
        prop_assert_eq!((fu as usize, fv as usize), (bu.len(), av.len()));
        prop_assert_eq!(&got_u, &scalar::grouped_masks(&bu));
        prop_assert_eq!(&got_v, &scalar::grouped_masks(&av));
    }

    /// `emit` (and the `MaskEmitter` behind it) groups a sorted fresh-lane
    /// list exactly as the reference does.
    #[test]
    fn emit_matches_grouped_masks(
        seed: u64,
        len in 0usize..150,
        spread in 1u32..1500,
    ) {
        let news = sorted_lanes(seed, len, spread);
        let mut got = Vec::new();
        kernels::emit(&news, 4, 11, &mut |v, w, m, t| {
            assert_eq!((v, t), (4, 11));
            got.push((w, m));
        });
        prop_assert_eq!(got, scalar::grouped_masks(&news));
    }

    /// Slab invariant: the exposed base is 64-byte aligned after any
    /// resize sequence, and contents start zeroed.
    #[test]
    fn aligned_slab_invariants(lens in prop::collection::vec(0usize..3000, 1..8)) {
        let mut s = AlignedSlab::new();
        for &len in &lens {
            s.resize_zeroed(len);
            prop_assert_eq!(s.len(), len);
            prop_assert!(s.words().iter().all(|&w| w == 0));
            if len > 0 {
                prop_assert_eq!(s.words().as_ptr() as usize % SLAB_ALIGN_BYTES, 0);
            }
            s.words_mut().iter_mut().for_each(|w| *w = !0);
        }
    }

    /// Arena invariant: pushes and slice-appends keep the live lanes
    /// 64-byte aligned and in insertion order across every growth path.
    #[test]
    fn aligned_lanes_invariants(
        ops in prop::collection::vec((any::<bool>(), 0u32..5000, 0usize..40), 1..60),
    ) {
        let mut a = AlignedLanes::new();
        a.clear();
        let mut expect = Vec::new();
        for &(push, lane, run) in &ops {
            if push {
                a.push(lane);
                expect.push(lane);
            } else {
                let chunk: Vec<u32> = (lane..lane + run as u32).collect();
                a.extend_from_slice(&chunk);
                expect.extend_from_slice(&chunk);
            }
            prop_assert_eq!(a.as_ptr() as usize % SLAB_ALIGN_BYTES, 0);
            prop_assert_eq!(a.len(), expect.len());
        }
        prop_assert_eq!(&a[..], &expect[..]);
        a.clear();
        prop_assert!(a.is_empty());
        prop_assert_eq!(a.as_ptr() as usize % SLAB_ALIGN_BYTES, 0);
    }
}
