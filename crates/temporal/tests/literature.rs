//! Worked instances from the paper and its reference lineage, as
//! executable specifications.

use ephemeral_graph::generators;
use ephemeral_temporal::expanded::max_disjoint_journeys;
use ephemeral_temporal::fastest::fastest_journey;
use ephemeral_temporal::foremost::foremost;
use ephemeral_temporal::hops::min_hops;
use ephemeral_temporal::metrics::temporal_metrics;
use ephemeral_temporal::reachability::treach_holds;
use ephemeral_temporal::reverse::latest_departure;
use ephemeral_temporal::{LabelAssignment, TemporalNetwork};

/// Paper §4.2, Figure 2: the 2-split journey through a star's centre.
/// `e1 = {u1, c}` has a label in `(0, n/2)` and `e2 = {c, u2}` one in
/// `(n/2, n)` — that is exactly what makes `u1 → u2` (and only that
/// direction with these two labels) feasible.
#[test]
fn figure2_two_split_journey() {
    let n = 10u32;
    // Star on 3 vertices: centre 0, leaves 1 and 2; e1 = {1,0} @ 3, e2 = {0,2} @ 8.
    let g = generators::star(3);
    let labels = LabelAssignment::from_vecs(vec![vec![3], vec![8]]).unwrap();
    let tn = TemporalNetwork::new(g, labels, n).unwrap();

    let run = foremost(&tn, 1, 0);
    assert_eq!(
        run.arrival(2),
        Some(8),
        "u1 → u2 arrives with the second window"
    );
    let j = run.journey_to(2).unwrap();
    assert_eq!(j.vertices(), vec![1, 0, 2]);
    assert_eq!(j.departure(), 3);
    assert_eq!(j.arrival(), 8);

    // The reverse direction u2 → u1 would need 8 < 3: impossible.
    assert!(!foremost(&tn, 2, 0).reached(1));
    // Hence this single-label star violates T_reach…
    assert!(!treach_holds(&tn, 1));
    // …which is the (b)-side intuition of Theorem 6: single labels cannot
    // serve both directions of a leaf pair.
}

/// Paper §1/§3: in the clique, the direct edge is always a (one-hop)
/// journey, so one label per edge preserves reachability — and the paper
/// notes K_n is the *only* such graph. We check the clique side and a
/// near-miss (clique minus one edge fails for some labelling).
#[test]
fn clique_is_the_only_single_label_safe_graph() {
    let n = 6;
    let g = generators::clique(n, false);
    let m = g.num_edges();
    // Worst-case-ish labelling: all labels equal — only direct hops work,
    // but in a clique that is enough.
    let labels = LabelAssignment::single(vec![1; m]).unwrap();
    let tn = TemporalNetwork::new(g, labels, 1).unwrap();
    assert!(treach_holds(&tn, 1));

    // Remove edge {0,1} and give every remaining edge the same label: now
    // 0 and 1 cannot reach each other (any 2-hop route needs increasing
    // labels).
    let mut b = ephemeral_graph::GraphBuilder::new_undirected(n);
    for (_, u, v) in generators::clique(n, false).edges() {
        if !(u == 0 && v == 1) {
            b.add_edge(u, v);
        }
    }
    let g2 = b.build().unwrap();
    let labels = LabelAssignment::single(vec![1; g2.num_edges()]).unwrap();
    let tn2 = TemporalNetwork::new(g2, labels, 1).unwrap();
    assert!(!treach_holds(&tn2, 1));
}

/// Kempe–Kleinberg–Kumar flavour: disjoint journeys obey the obvious cuts
/// and the time-expanded flow finds them.
#[test]
fn disjoint_journeys_respect_cuts() {
    // Two internally disjoint temporal routes 0 → 3 plus a shared slow one.
    //    0 —1→ 1 —2→ 3
    //    0 —1→ 2 —2→ 3
    // All four edges distinct: flow should be 2.
    let mut b = ephemeral_graph::GraphBuilder::new_undirected(4);
    b.add_edge(0, 1);
    b.add_edge(1, 3);
    b.add_edge(0, 2);
    b.add_edge(2, 3);
    let g = b.build().unwrap();
    let labels = LabelAssignment::from_vecs(vec![vec![1], vec![2], vec![1], vec![2]]).unwrap();
    let tn = TemporalNetwork::new(g, labels, 3).unwrap();
    assert_eq!(max_disjoint_journeys(&tn, 0, 3), 2);

    // Make both routes cross one bottleneck edge {1,3}: flow collapses to
    // its label count.
    let mut b = ephemeral_graph::GraphBuilder::new_undirected(4);
    b.add_edge(0, 1);
    b.add_edge(0, 2);
    b.add_edge(2, 1);
    b.add_edge(1, 3);
    let g = b.build().unwrap();
    let labels = LabelAssignment::from_vecs(vec![vec![1], vec![1], vec![2], vec![3]]).unwrap();
    let tn = TemporalNetwork::new(g, labels, 3).unwrap();
    assert_eq!(max_disjoint_journeys(&tn, 0, 3), 1);
}

/// Bui-Xuan–Ferreira–Jarry: foremost ≠ fastest ≠ fewest-hops, on one
/// instance exhibiting all three optima on different journeys.
#[test]
fn three_journey_notions_diverge() {
    // 0—1—2 path with an extra direct edge 0—2.
    //   direct 0—2 @ {9}        : 1 hop, arrival 9, duration 1
    //   0—1 @ {1,6}, 1—2 @ {2,7}: arrival 2 (foremost, depart 1, duration 2)
    //                             or depart 6 arrive 7 (duration 2)
    let mut b = ephemeral_graph::GraphBuilder::new_undirected(3);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(0, 2);
    let g = b.build().unwrap();
    let labels = LabelAssignment::from_vecs(vec![vec![1, 6], vec![2, 7], vec![9]]).unwrap();
    let tn = TemporalNetwork::new(g, labels, 9).unwrap();

    // Foremost: arrival 2 via the two-hop route.
    let run = foremost(&tn, 0, 0);
    assert_eq!(run.arrival(2), Some(2));
    assert_eq!(run.journey_to(2).unwrap().hops(), 2);

    // Fewest hops: the direct edge, 1 hop.
    let hops = min_hops(&tn, 0, 5);
    assert_eq!(hops[2], 1);

    // Fastest: duration 1 via the direct edge (depart 9, arrive 9).
    let fastest = fastest_journey(&tn, 0, 2).unwrap();
    assert_eq!(fastest.duration, 1);
    assert_eq!(fastest.departure, 9);

    // Latest departure towards 2 by deadline 9: also the direct edge.
    let rev = latest_departure(&tn, 2, 9);
    assert_eq!(rev.departure(0), Some(9));
}

/// The paper's ephemerality: *nothing* is available after the lifetime, so
/// raising the deadline beyond it changes nothing.
#[test]
fn ephemerality_is_absolute() {
    let g = generators::path(3);
    let labels = LabelAssignment::from_vecs(vec![vec![2], vec![3]]).unwrap();
    let tn = TemporalNetwork::new(g, labels, 10).unwrap();
    let at_lifetime = latest_departure(&tn, 2, 10);
    let beyond = latest_departure(&tn, 2, u32::MAX - 2);
    for v in 0..3u32 {
        assert_eq!(at_lifetime.departure(v), beyond.departure(v));
    }
    let m = temporal_metrics(&tn, 1);
    assert_eq!(
        m.max_temporal_distance, 3,
        "no journey can end after max label"
    );
}
