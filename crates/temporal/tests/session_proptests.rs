//! Differential property tests of the point-query layer: every answer a
//! [`QuerySession`] produces — lane passes with per-lane early exit,
//! dispatched full-width rows, cursor-log fast paths, label-move
//! maintenance — must be **bit-identical** to the scalar `foremost`
//! oracle, across ragged batch sizes, shared-endpoint buckets, horizons
//! that expire lanes mid-pass, and engine regimes.

use ephemeral_graph::generators;
use ephemeral_graph::{EdgeId, NodeId};
use ephemeral_rng::{RandomSource, SeedSequence};
use ephemeral_temporal::engine::{BatchSweeper, Lane, MAX_LANES};
use ephemeral_temporal::foremost::{foremost, foremost_with_horizon};
use ephemeral_temporal::session::{PointAnswer, PointQuery, QuerySession};
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time, NEVER};
use proptest::prelude::*;

fn random_network(
    seed: u64,
    n: usize,
    p: f64,
    directed: bool,
    max_labels: usize,
    lifetime: Time,
) -> TemporalNetwork {
    let mut rng = SeedSequence::new(seed).rng(42);
    let g = generators::gnp(n, p, directed, &mut rng);
    let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
        let k = 1 + rng.bounded_u64(max_labels as u64) as usize;
        (0..k).map(|_| rng.range_u32(1, lifetime)).collect()
    })
    .unwrap();
    TemporalNetwork::new(g, labels, lifetime).unwrap()
}

/// Mixed query batch over a fixed vertex pool, deliberately reusing a
/// few endpoints so several lanes share source/target buckets.
fn mixed_queries(seed: u64, n: usize, lifetime: Time, k: usize) -> Vec<PointQuery> {
    let mut rng = SeedSequence::new(seed).rng(9);
    let pool: Vec<NodeId> = (0..8.min(n)).map(|_| rng.bounded_u32(n as u32)).collect();
    let pick = move |rng: &mut ephemeral_rng::Xoshiro256PlusPlus| {
        if rng.index(2) == 0 && !pool.is_empty() {
            pool[rng.index(pool.len())]
        } else {
            rng.bounded_u32(n as u32)
        }
    };
    (0..k)
        .map(|_| {
            let u = pick(&mut rng);
            let v = pick(&mut rng);
            match rng.index(5) {
                0 => PointQuery::DistanceRow {
                    u,
                    horizon: if rng.index(2) == 0 {
                        NEVER
                    } else {
                        rng.range_u32(1, lifetime)
                    },
                },
                1 | 2 => PointQuery::Reaches {
                    u,
                    v,
                    by: rng.range_u32(1, lifetime),
                },
                _ => PointQuery::Foremost { u, v },
            }
        })
        .collect()
}

fn oracle(tn: &TemporalNetwork, q: &PointQuery) -> PointAnswer {
    match *q {
        PointQuery::Reaches { u, v, by } => {
            let arrival = foremost_with_horizon(tn, u, 0, by).arrival(v);
            PointAnswer::Reaches {
                reached: arrival.is_some(),
                arrival,
            }
        }
        PointQuery::Foremost { u, v } => PointAnswer::Foremost(foremost(tn, u, 0).arrival(v)),
        PointQuery::DistanceRow { u, horizon } => {
            PointAnswer::DistanceRow(foremost_with_horizon(tn, u, 0, horizon).arrivals().to_vec())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-lane early exit is pure work avoidance: a lane retired at
    /// time t reports the same foremost arrival as a full 64-lane
    /// `BatchSweeper` pass with no targets (no early exit) and as the
    /// scalar oracle — including lanes that never complete (horizon
    /// answers) and lanes sharing endpoints in the same bucket.
    #[test]
    fn retired_lanes_report_full_pass_arrivals(
        seed: u64,
        n in 2usize..80,
        p in 0.02f64..0.35,
        directed: bool,
        lanes in 1usize..=MAX_LANES,
        lifetime in 2u32..70,
    ) {
        let tn = random_network(seed, n, p, directed, 2, lifetime);
        let mut rng = SeedSequence::new(seed ^ 0x1a7e).rng(3);
        let queries: Vec<Lane> = (0..lanes)
            .map(|_| {
                let source = rng.bounded_u32(n as u32);
                let target = rng.bounded_u32(n as u32);
                let horizon = match rng.index(3) {
                    0 => NEVER,
                    1 => rng.range_u32(1, lifetime),
                    // Horizons past the lifetime clamp to it.
                    _ => lifetime + rng.bounded_u32(5),
                };
                Lane { source, target: Some(target), horizon, saturation: u32::MAX }
            })
            .collect();
        let mut early = vec![0 as Time; lanes];
        BatchSweeper::new().sweep_lanes(&tn, &queries, 0, &mut early, |_, _, _| {});
        // The full pass: same sources, no targets, per-source horizons
        // served by scanning the complete arrival rows afterwards.
        let sources: Vec<NodeId> = queries.iter().map(|l| l.source).collect();
        let mut full = vec![0 as Time; lanes * n];
        BatchSweeper::new().arrivals_into(&tn, &sources, 0, &mut full);
        for (i, lane) in queries.iter().enumerate() {
            let v = lane.target.unwrap() as usize;
            let unbounded = full[i * n + v];
            let bounded = if unbounded != NEVER && unbounded <= lane.horizon {
                unbounded
            } else if v == lane.source as usize {
                0
            } else {
                NEVER
            };
            prop_assert_eq!(early[i], bounded, "lane {} vs full pass", i);
            let scalar = foremost_with_horizon(&tn, lane.source, 0, lane.horizon)
                .arrival(lane.target.unwrap())
                .unwrap_or(NEVER);
            prop_assert_eq!(early[i], scalar, "lane {} vs scalar", i);
        }
    }

    /// Session batches answer exactly like the scalar oracle, at ragged
    /// sizes around the lane width (1, 63, 64 per batch; 65 queries
    /// split across two batches), with shared endpoints.
    #[test]
    fn session_batches_match_scalar(
        seed: u64,
        n in 2usize..70,
        p in 0.02f64..0.3,
        directed: bool,
        lifetime in 2u32..60,
        total_idx in 0usize..5,
    ) {
        // Ragged sizes around the lane width: 65 splits across batches.
        let total = [1usize, 2, 63, 64, 65][total_idx];
        let tn = random_network(seed, n, p, directed, 2, lifetime);
        let queries = mixed_queries(seed, n, lifetime, total);
        let mut session = QuerySession::new(tn);
        let mut answers = Vec::new();
        for chunk in queries.chunks(MAX_LANES) {
            answers.extend(session.answer_batch(chunk));
        }
        for (q, a) in queries.iter().zip(&answers) {
            prop_assert_eq!(a, &oracle(session.network(), q), "query {:?}", q);
        }
    }

    /// The cursor-resident fast path and the lane-pass path answer
    /// bit-identically, before and after label-move maintenance, and
    /// both equal a cold rebuild of the mutated instance.
    #[test]
    fn cursor_maintenance_matches_cold_rebuild(
        seed: u64,
        n in 2usize..50,
        p in 0.03f64..0.3,
        lifetime in 4u32..50,
        moves in 1usize..20,
    ) {
        let tn = random_network(seed, n, p, false, 2, lifetime);
        if tn.assignment().num_edges() == 0 {
            return; // no edge to move; nothing to maintain
        }
        let queries = mixed_queries(seed ^ 7, n, lifetime, 24);
        let mut session = QuerySession::new(tn);
        session.record_cursor();
        let mut rng = SeedSequence::new(seed ^ 0xd0).rng(1);
        let m = session.network().assignment().num_edges();
        for _ in 0..moves {
            let e = rng.index(m) as EdgeId;
            let labels = session.network().labels(e);
            let from = labels[rng.index(labels.len())];
            let _ = session.move_label(e, from, rng.range_u32(1, lifetime));
        }
        let warm = session.answer_batch(&queries);
        let mut cold = QuerySession::new(session.network().clone());
        prop_assert_eq!(&warm, &cold.answer_batch(&queries));
        for (q, a) in queries.iter().zip(&warm) {
            prop_assert_eq!(a, &oracle(session.network(), q), "query {:?}", q);
        }
    }
}

/// Above the batch crossover, row queries dispatch to the density-picked
/// full-width engine while target queries stay on the lane pass — both
/// must match the oracle. One deterministic case (the crossover is too
/// big for per-case proptest networks).
#[test]
fn wide_regime_session_matches_scalar() {
    use ephemeral_temporal::sparse::EngineChoice;
    use ephemeral_temporal::wide::{EngineKind, WIDE_CROSSOVER};
    for (seed, p_scale) in [(1u64, 3.0), (2, 24.0)] {
        let n = WIDE_CROSSOVER + 17;
        let lifetime = 4 * n as Time;
        let tn = random_network(seed, n, p_scale / n as f64, false, 1, lifetime);
        let kind = EngineChoice::pick_for(&tn);
        assert_ne!(
            kind,
            EngineKind::Batch,
            "seed {seed} stayed below the crossover"
        );
        let queries = mixed_queries(seed, n, lifetime, 32);
        let mut session = QuerySession::new(tn);
        let answers = session.answer_batch(&queries);
        for (q, a) in queries.iter().zip(&answers) {
            assert_eq!(*a, oracle(session.network(), q), "seed {seed} query {q:?}");
        }
        assert!(
            session.stats().dispatched_rows > 0,
            "seed {seed} dispatched no rows"
        );
    }
}
