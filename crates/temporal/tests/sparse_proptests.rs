//! Differential property tests for the event-driven sparse-frontier
//! engine: a sparse sweep must be **bit-identical** to the wide engine,
//! the 64-lane batched engine and per-source scalar `foremost` sweeps —
//! across random graphs, directedness, label densities (multi-label edges
//! exercise the version memo), sparse lifetimes (mostly-empty buckets),
//! non-multiple-of-64 vertex counts, start times, horizons, and any
//! column-block sharding (the 1/2/8-worker determinism contract of the
//! parallel fold). The scalar sweep is the oracle; the density-aware
//! dispatch of every sparse consumer (closure, distances, diameter,
//! connectivity, metrics) is pinned against it here.

use ephemeral_graph::generators;
use ephemeral_graph::NodeId;
use ephemeral_rng::{RandomSource, SeedSequence};
use ephemeral_temporal::closure::ReachabilityMatrix;
use ephemeral_temporal::distance::{
    all_pairs_temporal_distances, instance_temporal_diameter, instance_temporal_diameter_scratch,
    instance_temporal_diameter_scratch_traced,
};
use ephemeral_temporal::engine::{batch_count, batch_range, BatchSweeper};
use ephemeral_temporal::foremost::{foremost, foremost_with_horizon};
use ephemeral_temporal::metrics::temporal_metrics;
use ephemeral_temporal::reachability::{is_temporally_connected, treach_holds};
use ephemeral_temporal::sparse::{EngineChoice, SparseSweeper};
use ephemeral_temporal::wide::{
    source_blocks, EngineKind, SweepScratch, WideSweeper, WIDE_CROSSOVER,
};
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time, NEVER};
use proptest::prelude::*;

/// A random temporal network: `gnp` topology, `1..=max_labels` uniform
/// labels per edge, arbitrary lifetime — sparse lifetimes (`a ≫` label
/// count) leave most buckets empty, the regime the event-driven engine
/// exists for; `max_labels > 1` relabels edges, the shape the version
/// memo short-circuits.
fn random_network(
    seed: u64,
    n: usize,
    p: f64,
    directed: bool,
    max_labels: usize,
    lifetime: Time,
) -> TemporalNetwork {
    let mut rng = SeedSequence::new(seed).rng(23);
    let g = generators::gnp(n, p, directed, &mut rng);
    let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
        let k = 1 + rng.bounded_u64(max_labels as u64) as usize;
        (0..k).map(|_| rng.range_u32(1, lifetime)).collect()
    })
    .unwrap();
    TemporalNetwork::new(g, labels, lifetime).unwrap()
}

fn scalar_arrivals(tn: &TemporalNetwork, start: Time) -> Vec<Time> {
    let n = tn.num_nodes();
    let mut out = Vec::with_capacity(n * n);
    for s in 0..n as NodeId {
        out.extend_from_slice(foremost(tn, s, start).arrivals());
    }
    out
}

fn sparse_arrivals(tn: &TemporalNetwork, start: Time) -> Vec<Time> {
    let n = tn.num_nodes();
    let mut out = vec![0; n * n];
    SparseSweeper::new().arrivals_into(tn, 0..n as NodeId, start, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Core contract: one event-driven pass equals the scalar oracle, the
    /// wide engine and the batched engine, arrival for arrival —
    /// including multi-label edges (the version memo), sparse lifetimes
    /// with mostly-empty buckets, and non-multiple-of-64 n.
    #[test]
    fn sparse_arrivals_are_bit_identical_to_scalar_wide_and_batch(
        seed: u64,
        n in 2usize..150,
        p in 0.01f64..0.3,
        directed: bool,
        max_labels in 1usize..5,
        lifetime in 1u32..600,
        start in 0u32..6,
    ) {
        let tn = random_network(seed, n, p, directed, max_labels, lifetime);
        let sparse = sparse_arrivals(&tn, start);
        prop_assert_eq!(&sparse, &scalar_arrivals(&tn, start));
        let mut wide = vec![0; n * n];
        WideSweeper::new().arrivals_into(&tn, 0..n as NodeId, start, &mut wide);
        prop_assert_eq!(&sparse, &wide);
        let mut batch = BatchSweeper::new();
        let mut batched = Vec::with_capacity(n * n);
        for b in 0..batch_count(n) {
            let sources: Vec<NodeId> = batch_range(n, b).collect();
            let mut chunk = vec![0; sources.len() * n];
            batch.arrivals_into(&tn, &sources, start, &mut chunk);
            batched.extend(chunk);
        }
        prop_assert_eq!(&sparse, &batched);
    }

    /// The sharded fold is deterministic: sweeping the column blocks of
    /// 1, 2 or 8 workers and folding in canonical block order reproduces
    /// the full-width pass bit for bit (lanes in different blocks never
    /// interact; the version memo is per-sweep state).
    #[test]
    fn block_sharding_is_deterministic(
        seed: u64,
        n in 2usize..150,
        p in 0.02f64..0.25,
        directed: bool,
        lifetime in 1u32..300,
    ) {
        let tn = random_network(seed, n, p, directed, 2, lifetime);
        let full = sparse_arrivals(&tn, 0);
        for threads in [1usize, 2, 8] {
            let mut sweeper = SparseSweeper::new();
            let mut sharded = Vec::with_capacity(n * n);
            for block in source_blocks(n, threads) {
                let mut rows = vec![0; block.len() * n];
                sweeper.arrivals_into(&tn, block, 0, &mut rows);
                sharded.extend(rows);
            }
            prop_assert_eq!(&sharded, &full, "threads {}", threads);
        }
    }

    /// Stats agree with the wide engine exactly: reached bits, last
    /// arrival and the bucket-visit count (both engines walk the same
    /// occupied window and share the saturation exit).
    #[test]
    fn sparse_stats_match_wide_stats(
        seed: u64,
        n in 2usize..120,
        p in 0.02f64..0.3,
        directed: bool,
        lifetime in 1u32..400,
    ) {
        let tn = random_network(seed, n, p, directed, 2, lifetime);
        let ws = WideSweeper::new().sweep(&tn, 0..n as NodeId, 0, |_, _, _, _| {});
        let ss = SparseSweeper::new().sweep(&tn, 0..n as NodeId, 0, |_, _, _, _| {});
        prop_assert_eq!(ss.lanes, ws.lanes);
        prop_assert_eq!(ss.reached_bits, ws.reached_bits);
        prop_assert_eq!(ss.last_arrival, ws.last_arrival);
        prop_assert_eq!(ss.buckets_visited, ws.buckets_visited);
    }

    /// Horizon-limited sparse sweeps equal the scalar horizon oracle.
    #[test]
    fn sparse_horizon_matches_scalar_horizon(
        seed: u64,
        n in 2usize..80,
        p in 0.02f64..0.3,
        directed: bool,
        lifetime in 2u32..200,
        horizon_frac in 0.0f64..1.2,
        start in 0u32..5,
    ) {
        let tn = random_network(seed, n, p, directed, 3, lifetime);
        let horizon = ((f64::from(lifetime) * horizon_frac) as Time).max(1);
        let mut got = vec![NEVER; n * n];
        for s in 0..n {
            got[s * n + s] = start;
        }
        SparseSweeper::new().sweep_with_horizon(
            &tn,
            0..n as NodeId,
            start,
            horizon,
            |v, w, mut fresh, t| {
                while fresh != 0 {
                    let lane = w * 64 + fresh.trailing_zeros() as usize;
                    got[lane * n + v as usize] = t;
                    fresh &= fresh - 1;
                }
            },
        );
        let mut expected = Vec::with_capacity(n * n);
        for s in 0..n as NodeId {
            expected.extend_from_slice(foremost_with_horizon(&tn, s, start, horizon).arrivals());
        }
        prop_assert_eq!(got, expected);
    }

    /// The sharded fold stays deterministic under horizons and heavy
    /// relabels: sweeping each worker's column block with the same
    /// horizon and folding in canonical order equals the single-stream
    /// pass and the scalar horizon oracle, for 1, 2 and 8 workers on
    /// ragged n, directed and undirected.
    #[test]
    fn sharded_horizon_sweeps_are_bit_identical(
        seed: u64,
        n in 2usize..130,
        p in 0.02f64..0.25,
        directed: bool,
        max_labels in 1usize..5,
        lifetime in 2u32..300,
        horizon_frac in 0.0f64..1.2,
    ) {
        let tn = random_network(seed, n, p, directed, max_labels, lifetime);
        let horizon = ((f64::from(lifetime) * horizon_frac) as Time).max(1);
        let record = |sweeper: &mut SparseSweeper, block: std::ops::Range<NodeId>| {
            let lanes = block.len();
            let lo = block.start as usize;
            let mut rows = vec![NEVER; lanes * n];
            for s in block.clone() {
                rows[(s as usize - lo) * n + s as usize] = 0;
            }
            sweeper.sweep_with_horizon(&tn, block, 0, horizon, |v, w, mut fresh, t| {
                while fresh != 0 {
                    let lane = w * 64 + fresh.trailing_zeros() as usize;
                    rows[lane * n + v as usize] = t;
                    fresh &= fresh - 1;
                }
            });
            rows
        };
        let mut expected = Vec::with_capacity(n * n);
        for s in 0..n as NodeId {
            expected.extend_from_slice(foremost_with_horizon(&tn, s, 0, horizon).arrivals());
        }
        let full = record(&mut SparseSweeper::new(), 0..n as NodeId);
        prop_assert_eq!(&full, &expected);
        for workers in [1usize, 2, 8] {
            let mut sweeper = SparseSweeper::new();
            let mut folded = Vec::with_capacity(n * n);
            for block in source_blocks(n, workers) {
                folded.extend(record(&mut sweeper, block));
            }
            prop_assert_eq!(&folded, &full, "workers {}", workers);
        }
    }

    /// Compaction cycles never change a bit: with the floor forced to a
    /// single word the arena evacuates continuously, sharded or not, and
    /// every fold still equals the unforced single-stream pass.
    #[test]
    fn forced_compaction_keeps_sharded_folds_bit_identical(
        seed: u64,
        n in 2usize..120,
        p in 0.03f64..0.3,
        directed: bool,
        max_labels in 2usize..6,
        lifetime in 2u32..400,
    ) {
        let tn = random_network(seed, n, p, directed, max_labels, lifetime);
        let full = sparse_arrivals(&tn, 0);
        for workers in [1usize, 2, 8] {
            let mut sweeper = SparseSweeper::new();
            sweeper.set_compaction_floor(1);
            let mut folded = Vec::with_capacity(n * n);
            for block in source_blocks(n, workers) {
                let mut rows = vec![0; block.len() * n];
                sweeper.arrivals_into(&tn, block, 0, &mut rows);
                folded.extend(rows);
            }
            prop_assert_eq!(&folded, &full, "workers {}", workers);
        }
    }

    /// The streaming closure answers exactly the reachability the
    /// arrivals imply, even when a one-byte budget forces an eviction on
    /// every cross-block query.
    #[test]
    fn streaming_closure_matches_arrivals_under_tiny_budget(
        seed: u64,
        n in 2usize..120,
        p in 0.02f64..0.3,
        directed: bool,
        lifetime in 1u32..300,
    ) {
        let tn = random_network(seed, n, p, directed, 2, lifetime);
        let arrivals = sparse_arrivals(&tn, 0);
        let mut sweeper = SparseSweeper::new();
        sweeper.set_closure_budget_bytes(1);
        sweeper.sweep(&tn, 0..n as NodeId, 0, |_, _, _, _| {});
        for v in (0..n).rev() {
            for s in 0..n {
                let bit = sweeper.reach_word(v as NodeId, s / 64) >> (s % 64) & 1 == 1;
                prop_assert_eq!(bit, arrivals[s * n + v] != NEVER, "pair ({}, {})", s, v);
            }
        }
    }

    /// In-place label replacement rebuilds the occupied index exactly as
    /// a fresh construction would, as seen by the sparse engine (its
    /// version memo and summaries must not survive across networks).
    #[test]
    fn replace_assignment_then_sparse_sweep_matches_fresh_network(
        seed: u64,
        n in 2usize..70,
        p in 0.05f64..0.4,
        lifetime in 2u32..300,
    ) {
        let mut tn = random_network(seed, n, p, false, 2, lifetime);
        let mut rng = SeedSequence::new(seed).rng(99);
        let fresh_labels = LabelAssignment::from_fn(tn.graph().num_edges(), |_| {
            vec![rng.range_u32(1, lifetime)]
        })
        .unwrap();
        let fresh =
            TemporalNetwork::new(tn.graph().clone(), fresh_labels.clone(), lifetime).unwrap();
        tn.replace_assignment(fresh_labels).unwrap();
        let mut sweeper = SparseSweeper::new();
        let n_id = n as NodeId;
        let mut a = vec![0; n * n];
        sweeper.arrivals_into(&tn, 0..n_id, 0, &mut a);
        let mut b = vec![0; n * n];
        sweeper.arrivals_into(&fresh, 0..n_id, 0, &mut b);
        prop_assert_eq!(a, b);
    }
}

/// Fixed-seed regression pins, added when the merge inner loops moved
/// into [`ephemeral_temporal::kernels`]: named seeds whose sharded folds
/// must stay bit-identical to the scalar oracle across 1/2/8 workers —
/// both skew regimes of the galloping merge show up in these instances.
#[test]
fn pinned_seeds_stay_bit_identical_across_worker_counts() {
    for (seed, n, p, directed, max_labels, lifetime) in [
        (0x00FE_ED18_u64, 101usize, 0.03f64, false, 1usize, 500u32),
        (0x00FE_ED19, 130, 0.10, true, 3, 80),
        (0x00FE_ED1A, 65, 0.25, false, 2, 30),
    ] {
        let tn = random_network(seed, n, p, directed, max_labels, lifetime);
        let oracle = scalar_arrivals(&tn, 0);
        assert_eq!(sparse_arrivals(&tn, 0), oracle, "seed {seed:#x}");
        for workers in [1usize, 2, 8] {
            let mut sweeper = SparseSweeper::new();
            let mut folded = Vec::with_capacity(n * n);
            for block in source_blocks(n, workers) {
                let mut rows = vec![0; block.len() * n];
                sweeper.arrivals_into(&tn, block, 0, &mut rows);
                folded.extend(rows);
            }
            assert_eq!(folded, oracle, "seed {seed:#x} workers {workers}");
        }
    }
}

proptest! {
    // The dispatching entry points in the sparse regime sweep ≥ 192
    // sources per case against n scalar oracles — fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// In the sparse regime above the batch crossover the density-aware
    /// dispatch routes every all-source entry point through the
    /// event-driven engine; pin closure, distances, diameter, metrics,
    /// connectivity and T_reach against the scalar oracle and across
    /// thread counts.
    #[test]
    fn dispatched_entry_points_match_scalar_in_the_sparse_regime(
        seed: u64,
        extra in 0usize..50,
        avg_degree in 2.0f64..5.0,
        directed: bool,
        lifetime_mult in 1u32..5,
    ) {
        let n = WIDE_CROSSOVER + extra;
        let lifetime = n as Time * lifetime_mult;
        // Aim for ~avg_degree/2 time-edges per vertex either way (directed
        // graphs draw twice the arcs at a given p), safely inside the
        // dispatch's sparse region.
        let p = if directed {
            avg_degree / (2.0 * n as f64)
        } else {
            avg_degree / n as f64
        };
        let tn = random_network(seed, n, p, directed, 1, lifetime);
        // The whole point: these instances dispatch event-driven.
        prop_assert_eq!(EngineChoice::pick_for(&tn), EngineKind::Sparse);

        let matrix = all_pairs_temporal_distances(&tn, 1);
        prop_assert_eq!(&matrix, &all_pairs_temporal_distances(&tn, 4));
        let closure = ReachabilityMatrix::compute(&tn, 2);
        let mut max_finite: Time = 0;
        let mut missing = 0usize;
        for s in 0..n as NodeId {
            let oracle = foremost(&tn, s, 0);
            prop_assert_eq!(matrix.row(s), oracle.arrivals(), "row {}", s);
            for (v, &a) in oracle.arrivals().iter().enumerate() {
                prop_assert_eq!(closure.reaches(s, v as NodeId), a != NEVER);
                if a == NEVER {
                    missing += 1;
                } else if v != s as usize {
                    max_finite = max_finite.max(a);
                }
            }
        }
        let d = instance_temporal_diameter(&tn, 2);
        prop_assert_eq!(d.max_finite, max_finite);
        prop_assert_eq!(d.unreachable_pairs, missing);
        let mut scratch = SweepScratch::new();
        prop_assert_eq!(d, instance_temporal_diameter_scratch(&tn, &mut scratch));
        let (d2, engine) = instance_temporal_diameter_scratch_traced(&tn, &mut scratch);
        prop_assert_eq!(d, d2);
        prop_assert_eq!(engine, EngineKind::Sparse);
        prop_assert_eq!(&temporal_metrics(&tn, 1), &temporal_metrics(&tn, 4));
        for threads in [1usize, 3] {
            prop_assert_eq!(is_temporally_connected(&tn, threads), missing == 0);
            let scalar_treach = (0..n as NodeId).all(|s| {
                use ephemeral_graph::algo::{bfs_distances, UNREACHABLE};
                let stat = bfs_distances(tn.graph(), s)
                    .iter()
                    .filter(|&&dist| dist != UNREACHABLE)
                    .count();
                foremost(&tn, s, 0).reached_count() == stat
            });
            prop_assert_eq!(treach_holds(&tn, threads), scalar_treach);
        }
    }
}
