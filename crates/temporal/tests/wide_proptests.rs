//! Differential property tests for the wide-frontier engine: a single
//! wide pass must be **bit-identical** to the 64-lane batched engine and
//! to per-source scalar `foremost` sweeps — across random graphs,
//! directedness, label densities, sparse lifetimes (mostly-empty
//! buckets), non-multiple-of-64 vertex counts, start times, horizons, and
//! any column-block sharding (the 1/2/8-worker determinism contract of
//! the parallel fold). The scalar sweep is the oracle; every wide
//! consumer (closure, distances, diameter, connectivity, metrics) is
//! pinned against it here.

use ephemeral_graph::generators;
use ephemeral_graph::NodeId;
use ephemeral_rng::{RandomSource, SeedSequence};
use ephemeral_temporal::closure::ReachabilityMatrix;
use ephemeral_temporal::distance::{
    all_pairs_temporal_distances, instance_temporal_diameter, instance_temporal_diameter_scratch,
};
use ephemeral_temporal::engine::BatchSweeper;
use ephemeral_temporal::foremost::{foremost, foremost_with_horizon};
use ephemeral_temporal::reachability::{is_temporally_connected, treach_holds};
use ephemeral_temporal::wide::{
    engine_for, probe_blocks, source_blocks, EngineKind, SweepScratch, WideSweeper, WIDE_CROSSOVER,
};
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time, NEVER};
use proptest::prelude::*;

/// A random temporal network: `gnp` topology, `1..=max_labels` uniform
/// labels per edge, arbitrary lifetime — sparse lifetimes (`a ≫` label
/// count) leave most buckets empty, the regime the occupied-times skip
/// list exists for.
fn random_network(
    seed: u64,
    n: usize,
    p: f64,
    directed: bool,
    max_labels: usize,
    lifetime: Time,
) -> TemporalNetwork {
    let mut rng = SeedSequence::new(seed).rng(17);
    let g = generators::gnp(n, p, directed, &mut rng);
    let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
        let k = 1 + rng.bounded_u64(max_labels as u64) as usize;
        (0..k).map(|_| rng.range_u32(1, lifetime)).collect()
    })
    .unwrap();
    TemporalNetwork::new(g, labels, lifetime).unwrap()
}

fn scalar_arrivals(tn: &TemporalNetwork, start: Time) -> Vec<Time> {
    let n = tn.num_nodes();
    let mut out = Vec::with_capacity(n * n);
    for s in 0..n as NodeId {
        out.extend_from_slice(foremost(tn, s, start).arrivals());
    }
    out
}

fn wide_arrivals(tn: &TemporalNetwork, start: Time) -> Vec<Time> {
    let n = tn.num_nodes();
    let mut out = vec![0; n * n];
    WideSweeper::new().arrivals_into(tn, 0..n as NodeId, start, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Core contract: one wide pass equals the scalar oracle and the
    /// batched engine, arrival for arrival, including sparse lifetimes
    /// with mostly-empty buckets and non-multiple-of-64 n.
    #[test]
    fn wide_arrivals_are_bit_identical_to_scalar_and_batch(
        seed: u64,
        n in 2usize..150,
        p in 0.01f64..0.3,
        directed: bool,
        max_labels in 1usize..4,
        lifetime in 1u32..600,
        start in 0u32..6,
    ) {
        let tn = random_network(seed, n, p, directed, max_labels, lifetime);
        let wide = wide_arrivals(&tn, start);
        prop_assert_eq!(&wide, &scalar_arrivals(&tn, start));
        // Batched engine over the same sources, batch by batch.
        let mut batch = BatchSweeper::new();
        let mut batched = Vec::with_capacity(n * n);
        for b in 0..ephemeral_temporal::engine::batch_count(n) {
            let sources: Vec<NodeId> = ephemeral_temporal::engine::batch_range(n, b).collect();
            let mut chunk = vec![0; sources.len() * n];
            batch.arrivals_into(&tn, &sources, start, &mut chunk);
            batched.extend(chunk);
        }
        prop_assert_eq!(&wide, &batched);
    }

    /// The sharded fold is deterministic: sweeping the column blocks of 1,
    /// 2 or 8 workers and folding in canonical block order reproduces the
    /// full-width pass bit for bit (lanes in different blocks never
    /// interact).
    #[test]
    fn block_sharding_is_deterministic(
        seed: u64,
        n in 2usize..150,
        p in 0.02f64..0.25,
        directed: bool,
        lifetime in 1u32..300,
    ) {
        let tn = random_network(seed, n, p, directed, 2, lifetime);
        let full = wide_arrivals(&tn, 0);
        for threads in [1usize, 2, 8] {
            let mut sweeper = WideSweeper::new();
            let mut sharded = Vec::with_capacity(n * n);
            for block in source_blocks(n, threads) {
                let mut rows = vec![0; block.len() * n];
                sweeper.arrivals_into(&tn, block, 0, &mut rows);
                sharded.extend(rows);
            }
            prop_assert_eq!(&sharded, &full, "threads {}", threads);
        }
        // The probe split covers the same ground.
        let (probe, rest) = probe_blocks(n, 3);
        let mut sweeper = WideSweeper::new();
        let mut sharded = Vec::with_capacity(n * n);
        let mut rows = vec![0; probe.len() * n];
        sweeper.arrivals_into(&tn, probe, 0, &mut rows);
        sharded.extend(rows);
        for block in rest {
            let mut rows = vec![0; block.len() * n];
            sweeper.arrivals_into(&tn, block, 0, &mut rows);
            sharded.extend(rows);
        }
        prop_assert_eq!(&sharded, &full);
    }

    /// Stats: reached bits, last arrival and the bucket-visit count agree
    /// with the scalar oracle and the occupied-times index; saturation
    /// never stops the sweep early when pairs remain unreached.
    #[test]
    fn wide_stats_match_scalar_reductions(
        seed: u64,
        n in 2usize..120,
        p in 0.02f64..0.3,
        directed: bool,
        lifetime in 1u32..400,
    ) {
        let tn = random_network(seed, n, p, directed, 2, lifetime);
        let mut sweeper = WideSweeper::new();
        let stats = sweeper.sweep(&tn, 0..n as NodeId, 0, |_, _, _, _| {});
        let mut reached = 0usize;
        let mut last: Time = 0;
        for s in 0..n as NodeId {
            for (v, &a) in foremost(&tn, s, 0).arrivals().iter().enumerate() {
                if a != NEVER {
                    reached += 1;
                    if v != s as usize {
                        last = last.max(a);
                    }
                }
            }
        }
        prop_assert_eq!(stats.reached_bits, reached);
        prop_assert_eq!(stats.last_arrival, last);
        prop_assert_eq!(stats.unreached_pairs(n), n * n - reached);
        let occupied = tn.occupied_times().len();
        prop_assert!(stats.buckets_visited <= occupied);
        if !stats.all_reached(n) {
            // No early exit happened: every occupied bucket was visited.
            prop_assert_eq!(stats.buckets_visited, occupied);
        }
    }

    /// The occupied-times index is exactly the set of non-empty buckets,
    /// and its window queries match a brute filter.
    #[test]
    fn occupied_index_matches_brute_scan(
        seed: u64,
        n in 2usize..60,
        p in 0.01f64..0.3,
        lifetime in 1u32..500,
        after in 0u32..520,
        upto in 0u32..520,
    ) {
        let tn = random_network(seed, n, p, false, 3, lifetime);
        let brute: Vec<Time> = (1..=tn.lifetime())
            .filter(|&t| !tn.edges_at(t).is_empty())
            .collect();
        prop_assert_eq!(tn.occupied_times(), brute.as_slice());
        let window: Vec<Time> = brute
            .iter()
            .copied()
            .filter(|&t| t > after && t <= upto.min(tn.lifetime()))
            .collect();
        prop_assert_eq!(tn.occupied_between(after, upto), window.as_slice());
    }

    /// Horizon-limited wide sweeps equal the scalar horizon oracle.
    #[test]
    fn wide_horizon_matches_scalar_horizon(
        seed: u64,
        n in 2usize..80,
        p in 0.02f64..0.3,
        directed: bool,
        lifetime in 2u32..200,
        horizon_frac in 0.0f64..1.2,
    ) {
        let tn = random_network(seed, n, p, directed, 2, lifetime);
        let horizon = ((f64::from(lifetime) * horizon_frac) as Time).max(1);
        let mut got = vec![NEVER; n * n];
        for s in 0..n {
            got[s * n + s] = 0;
        }
        WideSweeper::new().sweep_with_horizon(
            &tn,
            0..n as NodeId,
            0,
            horizon,
            |v, w, mut fresh, t| {
                while fresh != 0 {
                    let lane = w * 64 + fresh.trailing_zeros() as usize;
                    got[lane * n + v as usize] = t;
                    fresh &= fresh - 1;
                }
            },
        );
        let mut expected = Vec::with_capacity(n * n);
        for s in 0..n as NodeId {
            expected.extend_from_slice(foremost_with_horizon(&tn, s, 0, horizon).arrivals());
        }
        prop_assert_eq!(got, expected);
    }

    /// In-place label replacement rebuilds the occupied index exactly as a
    /// fresh construction would, as seen by the wide engine.
    #[test]
    fn replace_assignment_then_wide_sweep_matches_fresh_network(
        seed: u64,
        n in 2usize..70,
        p in 0.05f64..0.4,
        lifetime in 2u32..300,
    ) {
        let mut tn = random_network(seed, n, p, false, 2, lifetime);
        let mut rng = SeedSequence::new(seed).rng(99);
        let fresh_labels = LabelAssignment::from_fn(tn.graph().num_edges(), |_| {
            vec![rng.range_u32(1, lifetime)]
        })
        .unwrap();
        let fresh =
            TemporalNetwork::new(tn.graph().clone(), fresh_labels.clone(), lifetime).unwrap();
        tn.replace_assignment(fresh_labels).unwrap();
        prop_assert_eq!(tn.occupied_times(), fresh.occupied_times());
        prop_assert_eq!(wide_arrivals(&tn, 0), wide_arrivals(&fresh, 0));
    }
}

/// Fixed-seed regression pins, added when the engine inner loops moved
/// into [`ephemeral_temporal::kernels`]: named seeds whose sharded folds
/// must stay bit-identical to the scalar oracle across 1/2/8 workers, so
/// a kernel change that shifts one bit fails here deterministically — no
/// proptest shrinking required.
#[test]
fn pinned_seeds_stay_bit_identical_across_worker_counts() {
    for (seed, n, p, directed, lifetime) in [
        (0x00FE_ED08_u64, 97usize, 0.08f64, false, 250u32),
        (0x00FE_ED09, 129, 0.04, true, 600),
        (0x00FE_ED0A, 64, 0.15, false, 40),
    ] {
        let tn = random_network(seed, n, p, directed, 2, lifetime);
        let oracle = scalar_arrivals(&tn, 0);
        assert_eq!(wide_arrivals(&tn, 0), oracle, "seed {seed:#x}");
        for workers in [1usize, 2, 8] {
            let mut sweeper = WideSweeper::new();
            let mut folded = Vec::with_capacity(n * n);
            for block in source_blocks(n, workers) {
                let mut rows = vec![0; block.len() * n];
                sweeper.arrivals_into(&tn, block, 0, &mut rows);
                folded.extend(rows);
            }
            assert_eq!(folded, oracle, "seed {seed:#x} workers {workers}");
        }
    }
}

proptest! {
    // The dispatching entry points above the crossover sweep ≥ 192
    // sources per case against n scalar oracles — fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Above WIDE_CROSSOVER every all-source entry point rides the wide
    /// engine; pin closure, distances, diameter, connectivity and T_reach
    /// against the scalar oracle and across thread counts.
    #[test]
    fn dispatched_entry_points_match_scalar_above_the_crossover(
        seed: u64,
        extra in 0usize..50,
        p in 0.015f64..0.08,
        directed: bool,
        sparse_lifetime: bool,
    ) {
        let n = WIDE_CROSSOVER + extra;
        prop_assert_eq!(engine_for(n), EngineKind::Wide);
        let lifetime = if sparse_lifetime { 4 * n as Time } else { n as Time };
        let tn = random_network(seed, n, p, directed, 1, lifetime);

        let matrix = all_pairs_temporal_distances(&tn, 1);
        prop_assert_eq!(&matrix, &all_pairs_temporal_distances(&tn, 4));
        let closure = ReachabilityMatrix::compute(&tn, 2);
        let mut max_finite: Time = 0;
        let mut missing = 0usize;
        for s in 0..n as NodeId {
            let oracle = foremost(&tn, s, 0);
            prop_assert_eq!(matrix.row(s), oracle.arrivals(), "row {}", s);
            for (v, &a) in oracle.arrivals().iter().enumerate() {
                prop_assert_eq!(closure.reaches(s, v as NodeId), a != NEVER);
                if a == NEVER {
                    missing += 1;
                } else if v != s as usize {
                    max_finite = max_finite.max(a);
                }
            }
        }
        let d = instance_temporal_diameter(&tn, 2);
        prop_assert_eq!(d.max_finite, max_finite);
        prop_assert_eq!(d.unreachable_pairs, missing);
        let mut scratch = SweepScratch::new();
        prop_assert_eq!(d, instance_temporal_diameter_scratch(&tn, &mut scratch));
        for threads in [1usize, 3] {
            prop_assert_eq!(is_temporally_connected(&tn, threads), missing == 0);
            let scalar_treach = (0..n as NodeId).all(|s| {
                use ephemeral_graph::algo::{bfs_distances, UNREACHABLE};
                let stat = bfs_distances(tn.graph(), s)
                    .iter()
                    .filter(|&&dist| dist != UNREACHABLE)
                    .count();
                foremost(&tn, s, 0).reached_count() == stat
            });
            prop_assert_eq!(treach_holds(&tn, threads), scalar_treach);
        }
    }
}
