//! The paper's §6 research direction, live: design a network's availability
//! by combining a deterministic backbone with random extras, and watch the
//! cost/latency trade-off.
//!
//! Run with: `cargo run --release --example designed_availability`

use ephemeral_networks::core::design::{average_temporal_distance, backbone_with_random_extras};
use ephemeral_networks::graph::generators;
use ephemeral_networks::parallel::available_threads;
use ephemeral_networks::rng::default_rng;
use ephemeral_networks::temporal::reachability::treach_holds;

fn main() {
    // A 10×10 torus: 100 routers, 200 links, plenty of chords to enrich.
    let g = generators::torus(10, 10);
    let lifetime = 100;
    let threads = available_threads();
    println!(
        "torus 10x10: n = {}, links = {}, lifetime = {lifetime}",
        g.num_nodes(),
        g.num_edges()
    );
    println!("\n r extras | total slots | avg journey arrival | reach guaranteed?");

    let mut rng = default_rng(2014);
    for r in [0usize, 1, 2, 4, 8, 16, 32] {
        let d =
            backbone_with_random_extras(&g, 0, r, lifetime, &mut rng).expect("torus is connected");
        let (avg, missing) = average_temporal_distance(&d.network, threads);
        let certified = treach_holds(&d.network, threads);
        println!(
            "{r:>9} | {:>11} | {avg:>19.2} | {} (missing pairs: {missing})",
            d.network.assignment().total_labels(),
            if certified { "yes" } else { "NO" },
        );
    }

    println!(
        "\nThe backbone alone (r = 0) already preserves reachability — the\n\
         deterministic part of the design; every random extra label then\n\
         buys latency, never correctness. This is the cost/performance dial\n\
         the paper's conclusions (§6) propose to study."
    );
}
