//! The paper's motivating scenario (§1): a *hostile clique* whose links are
//! guarded except at one random moment each. How fast does a leaked message
//! spread, and how does the expansion process certify the route?
//!
//! Run with: `cargo run --release --example hostile_clique`

use ephemeral_networks::core::dissemination::{flood, flood_oracle_clique};
use ephemeral_networks::core::expansion::{expansion_process, ExpansionParams};
use ephemeral_networks::core::urtn;
use ephemeral_networks::rng::default_rng;

fn main() {
    let mut rng = default_rng(7);

    println!("== The hostile clique (exact, n = 512) ==");
    let n = 512;
    let tn = urtn::sample_normalized_urt_clique(n, true, &mut rng);

    // A spy at vertex 0 leaks a message; every arc forwards it the moment
    // it is unguarded (§3.5 protocol).
    let out = flood(&tn, 0);
    println!(
        "broadcast completed at time {:?} (ln n = {:.1}); {} messages crossed guarded links",
        out.broadcast_time,
        (n as f64).ln(),
        out.messages
    );

    // The expansion process (Algorithm 1) certifies an s→t journey inside
    // disjoint label windows.
    let params = ExpansionParams::practical(n);
    println!(
        "expansion params: c1 = {}, c2 = {}, d = {}",
        params.c1, params.c2, params.d
    );
    let outcome = expansion_process(&tn, 0, (n - 1) as u32, &params);
    println!(
        "forward levels |Γ_i(s)| = {:?}, backward levels |Γ'_i(t)| = {:?}",
        outcome.forward_levels, outcome.backward_levels
    );
    match &outcome.journey {
        Some(j) => println!(
            "matched: journey with {} hops arriving at {} ≤ bound {}",
            j.hops(),
            j.arrival(),
            outcome.arrival_bound
        ),
        None => println!(
            "expansion failed this run (bound {})",
            outcome.arrival_bound
        ),
    }

    println!("\n== The same story at n = 1,000,000 (delayed-revelation oracle) ==");
    let big: u64 = 1_000_000;
    let oracle = flood_oracle_clique(big, big as u32, &mut rng);
    println!(
        "oracle broadcast time: {:?} (ln n = {:.1}), expected messages ≈ {:.3e}",
        oracle.broadcast_time,
        (big as f64).ln(),
        oracle.expected_messages
    );
    let first_counts: Vec<u64> = oracle.informed_counts.iter().copied().take(12).collect();
    println!("informed counts over the first steps: {first_counts:?}");
}
