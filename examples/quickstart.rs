//! Quickstart: build a random temporal network, ask for journeys, measure
//! the temporal diameter of one instance.
//!
//! Run with: `cargo run --release --example quickstart`

use ephemeral_networks::core::urtn;
use ephemeral_networks::parallel::available_threads;
use ephemeral_networks::rng::default_rng;
use ephemeral_networks::temporal::distance::instance_temporal_diameter;
use ephemeral_networks::temporal::foremost::foremost;

fn main() {
    let n = 256;
    let mut rng = default_rng(42);

    // The paper's §3 object: a directed clique whose every arc is available
    // exactly once, at a uniform random time in {1, …, n}.
    let tn = urtn::sample_normalized_urt_clique(n, true, &mut rng);
    println!(
        "normalized U-RT clique: n = {}, arcs = {}, lifetime = {}",
        tn.num_nodes(),
        tn.graph().num_edges(),
        tn.lifetime()
    );

    // Foremost journeys from vertex 0.
    let run = foremost(&tn, 0, 0);
    println!(
        "foremost sweep from 0: reached {}/{} vertices",
        run.reached_count(),
        n
    );
    let target = (n - 1) as u32;
    if let Some(j) = run.journey_to(target) {
        println!(
            "foremost journey 0 → {target}: {} hops, arrives at time {} (ln n = {:.1})",
            j.hops(),
            j.arrival(),
            (n as f64).ln()
        );
        println!("  {j}");
    }

    // The instance temporal diameter: max over all ordered pairs.
    let d = instance_temporal_diameter(&tn, available_threads());
    println!(
        "instance temporal diameter = {:?} (unreachable pairs: {})",
        d.value(),
        d.unreachable_pairs
    );
    println!(
        "Theorem 4 predicts Θ(log n): log2 n = {:.1}, 3·ln n = {:.1}",
        (n as f64).log2(),
        3.0 * (n as f64).ln()
    );
}
