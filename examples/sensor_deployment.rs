//! Domain scenario: duty-cycled sensor networks.
//!
//! A sensor field wakes its radio links only at agreed random slots to save
//! energy (the paper's "availability comes at a cost"). Nodes know only `n`
//! and the diameter `d` — no topology, no global coordination — so each
//! pair of neighbours buys `r` random slots for its link (§4). How many
//! slots per link until *every* pair of sensors can relay data w.h.p., and
//! what is the Price of Randomness against a centrally planned schedule?
//!
//! Run with: `cargo run --release --example sensor_deployment`

use ephemeral_networks::core::opt;
use ephemeral_networks::core::por::{por_report, theorem7_r};
use ephemeral_networks::core::reachability_whp::{treach_probability, whp_target};
use ephemeral_networks::graph::algo::diameter;
use ephemeral_networks::graph::generators;

fn main() {
    // A 12×12 sensor grid: 144 motes, diameter 22.
    let g = generators::grid(12, 12);
    let n = g.num_nodes();
    let d = diameter(&g).expect("grid is connected");
    println!(
        "sensor grid: n = {n}, links = {}, diameter = {d}",
        g.num_edges()
    );
    println!("w.h.p. target: P[all-pairs relay] ≥ {:.4}", whp_target(n));

    // Sweep the per-link slot budget.
    println!("\n r (slots/link) | P[T_reach] (95% Wilson)");
    for r in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let p = treach_probability(&g, n as u32, r, 60, 99, 4);
        println!("{r:>15} | {p}");
    }
    println!(
        "(Theorem 7 sufficient budget: 2·d·ln n = {:.0} slots/link)",
        theorem7_r(n, d)
    );

    // Centrally planned alternative: the best deterministic schedule we can
    // certify, and the resulting Price of Randomness bracket.
    let scheme = opt::best_scheme(&g).expect("grid is connected");
    println!(
        "\ncentral planner: '{}' schedule with {} total slots (lower bound {})",
        scheme.name,
        scheme.total_labels,
        opt::opt_lower_bound(&g)
    );

    let report = por_report(&g, "12x12 grid", 40, 7, 4).expect("grid is connected");
    println!(
        "minimal measured r* = {} (P = {})",
        report.r, report.r_probability
    );
    println!(
        "Price of Randomness bracket: [{:.1}, {:.1}] (Theorem 8 bound {:.1})",
        report.por_lower, report.por_upper, report.theorem8
    );
}
