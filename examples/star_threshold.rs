//! Theorem 6 live: the star graph's sharp `Θ(log n)` threshold in the
//! per-edge label budget, rendered as an ASCII curve.
//!
//! Run with: `cargo run --release --example star_threshold`

use ephemeral_networks::core::star::{
    minimal_r_star, star_failure_upper_bound, star_treach_probability, two_split_probability,
};

fn main() {
    let n = 1024;
    let trials = 400;
    println!("star K_{{1,{}}} (normalized lifetime a = n = {n})", n - 1);
    println!(
        "log2 n = {:.1}, ln n = {:.1}\n",
        (n as f64).log2(),
        (n as f64).ln()
    );

    println!(" r | P[T_reach]                     | paper bound 1−n(n−1)·2^(1−r) | 2-split/pair");
    for r in (2..=40).step_by(2) {
        let p = star_treach_probability(n, r, trials, 1234, 4);
        let bound = 1.0 - star_failure_upper_bound(n, r);
        let bar_len = (p.estimate * 30.0).round() as usize;
        println!(
            "{r:>2} | {:<30} | {bound:>28.4} | {:.4}",
            format!("{:<6.4} {}", p.estimate, "#".repeat(bar_len)),
            two_split_probability(r)
        );
    }

    println!("\nsearching the minimal r with P ≥ 1 − 1/n …");
    for exp in [6u32, 8, 10, 12] {
        let n = 1usize << exp;
        let target = 1.0 - 1.0 / n as f64;
        let r = minimal_r_star(n, target, 400, 99, 4);
        println!(
            "n = {n:>5}: minimal r = {r:>3}   (r / log2 n = {:.2})",
            r as f64 / (n as f64).log2()
        );
    }
    println!("Theorem 6: r(n) = Θ(log n) — the ratio column should stabilise.");
}
