//! `ephemeral` — command-line front end to the library.
//!
//! ```text
//! ephemeral sample   --graph clique:32 --lifetime 32 --seed 7 [--directed] [--dot]
//! ephemeral diameter --graph clique:256 --trials 30 --seed 7 [--lifetime 512]
//! ephemeral flood    --n 1024 --seed 3 [--oracle]
//! ephemeral reach    --graph grid:8x8 --r 16 --trials 100 --seed 5
//! ephemeral por      --graph star:64 --trials 60 --seed 5
//! ephemeral metrics  --graph gnp:100:0.08 --r 4 --seed 9
//! ```
//!
//! Graph specs: `clique:N`, `star:N`, `path:N`, `cycle:N`, `wheel:N`,
//! `grid:RxC`, `torus:RxC`, `hypercube:D`, `tree:N` (random),
//! `gnp:N:P` (Erdős–Rényi).

use ephemeral_networks::core::diameter::td_montecarlo;
use ephemeral_networks::core::dissemination::{flood, flood_oracle_clique};
use ephemeral_networks::core::por::por_report;
use ephemeral_networks::core::reachability_whp::treach_probability;
use ephemeral_networks::core::urtn::{sample_multi_urtn, sample_urtn};
use ephemeral_networks::graph::{dot, generators, Graph};
use ephemeral_networks::parallel::available_threads;
use ephemeral_networks::rng::default_rng;
use ephemeral_networks::temporal::metrics::temporal_metrics;
use std::process::ExitCode;

/// Minimal flag parser: `--key value` pairs and bare `--switch`es.
struct Args {
    items: Vec<String>,
}

impl Args {
    fn new(items: Vec<String>) -> Self {
        Self { items }
    }

    fn flag(&self, name: &str) -> bool {
        self.items.iter().any(|a| a == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.items
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.items.get(i + 1))
            .map(String::as_str)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
        }
    }
}

/// Parse a graph spec like `grid:8x8` (see module docs for the grammar).
fn parse_graph(spec: &str, directed: bool, seed: u64) -> Result<Graph, String> {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    let int = |s: &str| -> Result<usize, String> {
        s.parse()
            .map_err(|_| format!("bad size in graph spec: {spec}"))
    };
    match kind {
        "clique" => Ok(generators::clique(int(rest)?, directed)),
        "star" => Ok(generators::star(int(rest)?)),
        "path" => Ok(generators::path(int(rest)?)),
        "cycle" => Ok(generators::cycle(int(rest)?)),
        "wheel" => Ok(generators::wheel(int(rest)?)),
        "hypercube" => Ok(generators::hypercube(int(rest)? as u32)),
        "tree" => {
            let mut rng = default_rng(seed ^ 0x7ee);
            Ok(generators::random_tree(int(rest)?, &mut rng))
        }
        "grid" | "torus" => {
            let (r, c) = rest
                .split_once('x')
                .ok_or_else(|| format!("{kind} needs RxC, got {rest}"))?;
            if kind == "grid" {
                Ok(generators::grid(int(r)?, int(c)?))
            } else {
                Ok(generators::torus(int(r)?, int(c)?))
            }
        }
        "gnp" => {
            let (n, p) = rest
                .split_once(':')
                .ok_or_else(|| format!("gnp needs N:P, got {rest}"))?;
            let p: f64 = p.parse().map_err(|_| format!("bad p: {p}"))?;
            let mut rng = default_rng(seed ^ 0x6e9);
            Ok(generators::gnp(int(n)?, p, directed, &mut rng))
        }
        other => Err(format!("unknown graph kind: {other}")),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ephemeral <sample|diameter|flood|reach|por|metrics> [flags]\n\
         see the binary's module docs (or README.md) for flags and graph specs"
    );
    ExitCode::FAILURE
}

fn run() -> Result<(), String> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return Err("missing subcommand".into());
    }
    let cmd = argv.remove(0);
    let args = Args::new(argv);
    let seed: u64 = args.parse("--seed", 2014)?;
    let threads = available_threads();

    match cmd.as_str() {
        "sample" => {
            let directed = args.flag("--directed");
            let spec = args.value("--graph").unwrap_or("clique:16");
            let g = parse_graph(spec, directed, seed)?;
            let lifetime: u32 = args.parse("--lifetime", g.num_nodes().max(1) as u32)?;
            let mut rng = default_rng(seed);
            let tn = sample_urtn(g, lifetime, &mut rng);
            if args.flag("--dot") {
                let labels = tn.assignment().clone();
                print!(
                    "{}",
                    dot::to_dot_with_labels(tn.graph(), "urtn", |e| {
                        Some(
                            labels
                                .labels(e)
                                .iter()
                                .map(ToString::to_string)
                                .collect::<Vec<_>>()
                                .join(","),
                        )
                    })
                );
            } else {
                println!(
                    "U-RTN over {spec}: n = {}, m = {}, lifetime = {}, time-edges = {}",
                    tn.num_nodes(),
                    tn.graph().num_edges(),
                    tn.lifetime(),
                    tn.num_time_edges()
                );
            }
        }
        "diameter" => {
            let spec = args.value("--graph").unwrap_or("clique:128");
            let g = parse_graph(spec, true, seed)?;
            let lifetime: u32 = args.parse("--lifetime", g.num_nodes().max(1) as u32)?;
            let trials: usize = args.parse("--trials", 20)?;
            let est = td_montecarlo(&g, lifetime, trials, seed, threads);
            println!(
                "TD({spec}, a={lifetime}) over {trials} trials: mean {:.2} (sd {:.2}, min {} max {}), \
                 TD/ln n = {:.3}, infinite instances: {}",
                est.finite.mean,
                est.finite.sd,
                est.finite.min,
                est.finite.max,
                est.gamma_ln,
                est.infinite_instances
            );
        }
        "flood" => {
            let n: usize = args.parse("--n", 1024)?;
            if args.flag("--oracle") {
                let mut rng = default_rng(seed);
                let out = flood_oracle_clique(n as u64, n as u32, &mut rng);
                println!(
                    "oracle flood on K_{n}: broadcast at {:?} (ln n = {:.1}), E[messages] ≈ {:.3e}",
                    out.broadcast_time,
                    (n as f64).ln(),
                    out.expected_messages
                );
            } else {
                let mut rng = default_rng(seed);
                let tn =
                    ephemeral_networks::core::urtn::sample_normalized_urt_clique(n, true, &mut rng);
                let out = flood(&tn, 0);
                println!(
                    "flood on K_{n}: broadcast at {:?} (ln n = {:.1}), {} messages of {} arcs",
                    out.broadcast_time,
                    (n as f64).ln(),
                    out.messages,
                    n * (n - 1)
                );
            }
        }
        "reach" => {
            let spec = args.value("--graph").unwrap_or("grid:8x8");
            let g = parse_graph(spec, false, seed)?;
            let r: usize = args.parse("--r", 8)?;
            let trials: usize = args.parse("--trials", 100)?;
            let lifetime = g.num_nodes().max(2) as u32;
            let p = treach_probability(&g, lifetime, r, trials, seed, threads);
            println!("P[T_reach]({spec}, r={r}) = {p}");
        }
        "por" => {
            let spec = args.value("--graph").unwrap_or("star:64");
            let g = parse_graph(spec, false, seed)?;
            let trials: usize = args.parse("--trials", 60)?;
            match por_report(&g, spec, trials, seed, threads) {
                Some(rep) => println!(
                    "{spec}: n={} m={} d={} r*={} OPT≤{} ({}) PoR∈[{:.1},{:.1}] Thm8={:.1}",
                    rep.n,
                    rep.m,
                    rep.diameter,
                    rep.r,
                    rep.opt_upper,
                    rep.opt_scheme,
                    rep.por_lower,
                    rep.por_upper,
                    rep.theorem8
                ),
                None => return Err(format!("{spec} is disconnected; PoR undefined")),
            }
        }
        "metrics" => {
            let spec = args.value("--graph").unwrap_or("gnp:100:0.08");
            let g = parse_graph(spec, false, seed)?;
            let r: usize = args.parse("--r", 4)?;
            let lifetime = g.num_nodes().max(2) as u32;
            let mut rng = default_rng(seed);
            let tn = sample_multi_urtn(g, lifetime, r, &mut rng);
            let m = temporal_metrics(&tn, threads);
            println!(
                "{spec} with r={r}: reach {:.3}, avg δ = {:.2}, max δ = {}, efficiency {:.4}",
                m.reachability_ratio,
                m.avg_temporal_distance,
                m.max_temporal_distance,
                m.temporal_efficiency
            );
        }
        _ => return Err(format!("unknown subcommand: {cmd}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_specs_parse() {
        assert_eq!(parse_graph("clique:8", false, 0).unwrap().num_edges(), 28);
        assert_eq!(parse_graph("star:5", false, 0).unwrap().num_edges(), 4);
        assert_eq!(parse_graph("grid:3x4", false, 0).unwrap().num_nodes(), 12);
        assert_eq!(parse_graph("torus:3x3", false, 0).unwrap().num_edges(), 18);
        assert_eq!(
            parse_graph("hypercube:3", false, 0).unwrap().num_edges(),
            12
        );
        assert_eq!(parse_graph("tree:9", false, 1).unwrap().num_edges(), 8);
        let g = parse_graph("gnp:50:0.2", false, 1).unwrap();
        assert_eq!(g.num_nodes(), 50);
    }

    #[test]
    fn bad_specs_error() {
        assert!(parse_graph("blob:4", false, 0).is_err());
        assert!(parse_graph("grid:3", false, 0).is_err());
        assert!(parse_graph("gnp:50", false, 0).is_err());
        assert!(parse_graph("clique:x", false, 0).is_err());
    }

    #[test]
    fn args_parse_flags_and_values() {
        let a = Args::new(vec![
            "--seed".into(),
            "9".into(),
            "--directed".into(),
            "--graph".into(),
            "star:4".into(),
        ]);
        assert!(a.flag("--directed"));
        assert!(!a.flag("--oracle"));
        assert_eq!(a.value("--graph"), Some("star:4"));
        assert_eq!(a.parse("--seed", 0u64).unwrap(), 9);
        assert_eq!(a.parse("--trials", 5usize).unwrap(), 5);
        assert!(a.parse::<u64>("--graph", 0).is_err());
    }
}
