//! # ephemeral-networks
//!
//! A Rust reproduction of **Akrida, Gąsieniec, Mertzios & Spirakis,
//! "Ephemeral Networks with Random Availability of Links: Diameter and
//! Connectivity" (SPAA 2014)** — temporal networks whose links appear only
//! at random discrete times within a finite lifetime.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`graph`] — CSR (di)graph substrate, generators, classical algorithms.
//! * [`temporal`] — labels, journeys, foremost / latest-departure / fastest
//!   journey algorithms, temporal distances and `T_reach`; the
//!   `engine` module batches 64 sources per sweep, the `wide` module
//!   answers **all** sources in one pass (saturation early-exit,
//!   empty-bucket skipping, column-block sharding), and the `sparse`
//!   module drives the same closure event-style from sorted reacher
//!   lists for the sparse regime (deterministic source-sharded parallel
//!   folds, arena compaction, byte-budgeted streaming closure — million-
//!   vertex capable) — the all-pairs closure, distance,
//!   diameter and connectivity entry points dispatch between all three
//!   through the density-aware, worker-aware `sparse::EngineChoice`; the
//!   `delta`
//!   module maintains a recorded closure **differentially** across
//!   single-label moves (retract-and-replay, bit-identical to cold
//!   sweeps, ~15× per move on sparse `G(4096, p)`); all three engines
//!   run their inner loops through the `kernels` module — one explicit
//!   layer of unrolled OR/ANDN word kernels and galloping sorted-`u32`
//!   merges over 64-byte-aligned slabs, pinned bit-identical to a
//!   scalar reference.
//! * [`core`] — the paper's contribution: U-RTN models, the Expansion
//!   Process (Algorithm 1), the §3.5 dissemination protocol, temporal
//!   diameter estimation, star-graph machinery, deterministic OPT schemes
//!   and the Price of Randomness; `correlated` runs single-site Gibbs
//!   what-if chains on the differentially maintained closure.
//! * [`serve`] — a long-lived reachability service over resident
//!   `temporal::session::QuerySession`s: a JSON-lines protocol over
//!   stdin/TCP, instances sharded onto workers each owning a
//!   byte-budgeted LRU cache, consecutive point queries per instance
//!   coalesced into 64-lane batches, answers streamed back in arrival
//!   order, and panic/deadline degradation to `"status":"failed"` lines.
//! * [`phonecall`] — the random phone-call model baselines (§1.1).
//! * [`rng`] — deterministic PRNG stack (xoshiro256++ / SplitMix64).
//! * [`parallel`] — data-parallel Monte Carlo engine and statistics, plus
//!   the robustness substrate: `parallel::faults` is a deterministic
//!   failpoint registry (seeded panic/delay/alloc-pressure schedules that
//!   reproduce run-to-run), `try_par_map` / `try_run_adaptive` isolate
//!   worker panics into structured `WorkerPanic` errors without
//!   poisoning pool or scratch state, and `CancelToken` gives sweeps a
//!   cooperative bucket-boundary watchdog. The bench sweep grid builds
//!   on all three: per-cell retry with byte-identical recovery,
//!   `"status":"failed"` quarantine rows, and `--cell-timeout`.
//!
//! ## Quickstart
//!
//! ```
//! use ephemeral_networks::core::urtn;
//! use ephemeral_networks::core::dissemination::flood;
//! use ephemeral_networks::rng::default_rng;
//!
//! // The paper's "hostile clique": every arc of K_64 is unguarded exactly
//! // once, at a uniformly random moment in {1, …, 64}.
//! let mut rng = default_rng(2014);
//! let tn = urtn::sample_normalized_urt_clique(64, true, &mut rng);
//!
//! // Spreading a message greedily reaches everyone in O(log n) time.
//! let out = flood(&tn, 0);
//! assert_eq!(out.informed_count, 64);
//! assert!(f64::from(out.broadcast_time.unwrap()) <= 8.0 * 64f64.ln());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ephemeral_core as core;
pub use ephemeral_graph as graph;
pub use ephemeral_parallel as parallel;
pub use ephemeral_phonecall as phonecall;
pub use ephemeral_rng as rng;
pub use ephemeral_serve as serve;
pub use ephemeral_temporal as temporal;
