//! End-to-end invocations of the `ephemeral` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ephemeral"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn sample_reports_structure() {
    let (ok, stdout, _) = run(&["sample", "--graph", "star:9", "--seed", "4"]);
    assert!(ok);
    assert!(stdout.contains("n = 9"), "{stdout}");
    assert!(stdout.contains("m = 8"), "{stdout}");
}

#[test]
fn sample_dot_is_valid_graphviz() {
    let (ok, stdout, _) = run(&["sample", "--graph", "path:3", "--dot"]);
    assert!(ok);
    assert!(stdout.starts_with("graph urtn {"), "{stdout}");
    assert!(stdout.contains("label="), "{stdout}");
}

#[test]
fn diameter_subcommand_produces_estimate() {
    let (ok, stdout, _) = run(&[
        "diameter",
        "--graph",
        "clique:32",
        "--trials",
        "5",
        "--seed",
        "1",
    ]);
    assert!(ok);
    assert!(stdout.contains("mean"), "{stdout}");
    assert!(stdout.contains("infinite instances: 0"), "{stdout}");
}

#[test]
fn reach_subcommand_reports_probability() {
    let (ok, stdout, _) = run(&["reach", "--graph", "star:16", "--r", "24", "--trials", "20"]);
    assert!(ok);
    assert!(stdout.contains("P[T_reach]"), "{stdout}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn bad_graph_spec_fails_cleanly() {
    let (ok, _, stderr) = run(&["sample", "--graph", "mobius:9"]);
    assert!(!ok);
    assert!(stderr.contains("unknown graph kind"), "{stderr}");
}

#[test]
fn flood_oracle_runs_at_scale() {
    let (ok, stdout, _) = run(&["flood", "--n", "100000", "--oracle", "--seed", "2"]);
    assert!(ok);
    assert!(stdout.contains("broadcast at Some"), "{stdout}");
}
