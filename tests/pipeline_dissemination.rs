//! Integration: dissemination on random temporal cliques vs the phone-call
//! baselines — the §1.1 comparison as a runnable check.

use ephemeral_networks::core::bounds;
use ephemeral_networks::core::dissemination::{flood, flood_oracle_clique};
use ephemeral_networks::core::urtn;
use ephemeral_networks::phonecall::{push_broadcast, push_pull_broadcast};
use ephemeral_networks::rng::default_rng;

#[test]
fn all_three_models_broadcast_in_logarithmic_time() {
    let n = 512;
    let ln_n = (n as f64).ln();
    let mut rng = default_rng(3);

    let tn = urtn::sample_normalized_urt_clique(n, true, &mut rng);
    let temporal = flood(&tn, 0);
    assert_eq!(temporal.informed_count, n);
    let temporal_time = f64::from(temporal.broadcast_time.unwrap());

    let push = push_broadcast(n, 0, 10_000, &mut rng);
    assert!(push.complete);
    let pp = push_pull_broadcast(n, 0, 10_000, &mut rng);
    assert!(pp.complete);

    for (label, t) in [
        ("temporal flood", temporal_time),
        ("push", f64::from(push.rounds)),
        ("push-pull", f64::from(pp.rounds)),
    ] {
        assert!(t <= 6.0 * ln_n, "{label}: {t} > 6 ln n");
        assert!(t >= 2.0, "{label}: implausibly fast ({t})");
    }
}

#[test]
fn message_complexity_ordering_matches_the_paper() {
    // Temporal flooding is message-blind (Θ(n²)); push costs Θ(n log n);
    // push–pull transmissions undercut push.
    let n = 1024;
    let mut rng = default_rng(4);
    let tn = urtn::sample_normalized_urt_clique(n, true, &mut rng);
    let temporal = flood(&tn, 0);
    let push = push_broadcast(n, 0, 10_000, &mut rng);
    let pp = push_pull_broadcast(n, 0, 10_000, &mut rng);

    assert!(
        temporal.messages > push.messages,
        "flood {} should dwarf push {}",
        temporal.messages,
        push.messages
    );
    assert!(
        pp.transmissions < temporal.messages,
        "push-pull {} should undercut flooding {}",
        pp.transmissions,
        temporal.messages
    );
    // Flooding messages are a constant fraction of all n(n−1) arcs.
    let arcs = (n * (n - 1)) as f64;
    assert!(temporal.messages as f64 > 0.2 * arcs);
}

#[test]
fn oracle_and_exact_flood_agree_in_distribution() {
    // Mean broadcast time at n = 512, exact vs oracle, across seeds.
    let n = 512usize;
    let runs = 15;
    let mut exact_sum = 0.0;
    let mut oracle_sum = 0.0;
    for seed in 0..runs {
        let mut rng = default_rng(seed);
        let tn = urtn::sample_normalized_urt_clique(n, true, &mut rng);
        exact_sum += f64::from(flood(&tn, 0).broadcast_time.unwrap());
        let mut rng2 = default_rng(1000 + seed);
        oracle_sum += f64::from(
            flood_oracle_clique(n as u64, n as u32, &mut rng2)
                .broadcast_time
                .unwrap(),
        );
    }
    let exact_mean = exact_sum / runs as f64;
    let oracle_mean = oracle_sum / runs as f64;
    assert!(
        (exact_mean - oracle_mean).abs() <= 0.25 * exact_mean,
        "exact {exact_mean:.1} vs oracle {oracle_mean:.1}"
    );
}

#[test]
fn frieze_grimmett_curve_tracks_push() {
    // Push rounds at several sizes stay within a band of log2 n + ln n.
    for exp in [8u32, 10, 12] {
        let n = 1usize << exp;
        let mut rounds = 0.0;
        let runs = 5;
        for seed in 0..runs {
            rounds += f64::from(push_broadcast(n, 0, 10_000, &mut default_rng(seed)).rounds);
        }
        let mean = rounds / runs as f64;
        let fg = bounds::frieze_grimmett(n);
        assert!(
            mean >= 0.6 * fg && mean <= 1.6 * fg,
            "n = {n}: push mean {mean:.1} vs FG {fg:.1}"
        );
    }
}
