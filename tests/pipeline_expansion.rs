//! Integration: sample a U-RTN, run the expansion process, and validate the
//! certified journey against the temporal core's independent machinery.

use ephemeral_networks::core::expansion::{expansion_process, ExpansionParams};
use ephemeral_networks::core::urtn;
use ephemeral_networks::rng::default_rng;
use ephemeral_networks::temporal::foremost::foremost;
use ephemeral_networks::temporal::reverse::latest_departure;

#[test]
fn expansion_journeys_are_consistent_with_foremost_and_reverse() {
    let n = 256;
    let params = ExpansionParams::practical(n);
    let mut validated = 0;
    for seed in 0..8 {
        let mut rng = default_rng(seed);
        let tn = urtn::sample_normalized_urt_clique(n, true, &mut rng);
        let s = 3u32;
        let t = 200u32;
        let out = expansion_process(&tn, s, t, &params);
        let Some(journey) = &out.journey else {
            continue;
        };
        validated += 1;

        // The journey must be realizable and respect the window bound.
        assert!(journey.is_realizable_in(&tn));
        assert!(journey.arrival() <= out.arrival_bound);
        assert_eq!(journey.source(), s);
        assert_eq!(journey.target(), t);

        // The foremost journey cannot arrive later than the certified one.
        let fm = foremost(&tn, s, 0);
        assert!(fm.arrival(t).unwrap() <= journey.arrival());

        // The reverse sweep from t must see s departing no later than the
        // certified journey departs (it maximises the departure).
        let rev = latest_departure(&tn, t, tn.lifetime());
        assert!(rev.departure(s).unwrap() >= journey.departure());
    }
    assert!(
        validated >= 6,
        "expansion succeeded only {validated}/8 times"
    );
}

#[test]
fn expansion_matches_oracle_statistics() {
    // The exact expansion's level sizes at n = 1024 should match the
    // oracle's mean-field prediction within Monte Carlo noise.
    use ephemeral_networks::core::expansion_oracle::expected_levels;
    let n = 1024usize;
    let params = ExpansionParams::practical(n);
    let expect = expected_levels(n as u64, n as u32, &params);

    let runs = 12;
    let mut sums = vec![0.0f64; expect.len()];
    for seed in 100..100 + runs {
        let mut rng = default_rng(seed);
        let tn = urtn::sample_normalized_urt_clique(n, true, &mut rng);
        let out = expansion_process(&tn, 0, 1, &params);
        for (s, &l) in sums.iter_mut().zip(&out.forward_levels) {
            *s += l as f64;
        }
    }
    for (i, (&e, &s)) in expect.iter().zip(&sums).enumerate() {
        let avg = s / runs as f64;
        assert!(
            (avg - e).abs() <= 0.35 * e.max(4.0),
            "level {i}: exact avg {avg:.1} vs oracle expectation {e:.1}"
        );
    }
}
