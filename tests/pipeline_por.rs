//! Integration: Price-of-Randomness pipeline across families, checking the
//! paper's orderings end to end.

use ephemeral_networks::core::opt;
use ephemeral_networks::core::por::{por_report, theorem8_bound};
use ephemeral_networks::core::star::minimal_r_star;
use ephemeral_networks::graph::generators;
use ephemeral_networks::temporal::reachability::treach_holds;
use ephemeral_networks::temporal::TemporalNetwork;

#[test]
fn por_reports_are_internally_consistent_across_families() {
    // Note: our deterministic schemes are only *upper bounds* on OPT, so
    // they may cost more labels than m·r* on some families (observed on
    // grids) — the theorem-backed invariants are the bracket ordering and
    // Theorem 8's ceiling on the true PoR (i.e. on m·r/OPT ≤ m·r/(n−1)
    // only when r meets Theorem 7's budget; we check the measured bracket
    // is ordered and the star — where OPT is exact — sits under the bound).
    for (name, g) in [
        ("star", generators::star(64)),
        ("cycle", generators::cycle(32)),
        ("grid", generators::grid(6, 6)),
    ] {
        let rep = por_report(&g, name, 40, 11, 4).expect("connected");
        assert!(
            rep.por_lower <= rep.por_upper + 1e-9,
            "{name}: bracket inverted"
        );
        // por_upper = m·r/(n−1) ≥ 1 always (m ≥ n−1, r ≥ 1); por_lower may
        // dip below 1 because it divides by an OPT *over*-estimate.
        assert!(rep.por_upper >= 1.0 - 1e-9, "{name}: PoR upper below 1");
        assert!(
            rep.opt_lower <= rep.opt_upper,
            "{name}: OPT bounds inverted"
        );
        assert!(
            rep.r >= 1 && rep.m > 0 && rep.diameter >= 1,
            "{name}: degenerate report"
        );
    }

    // For the star OPT is exact (2m), so the true PoR = r*/2 is measured,
    // and Theorem 8 (with d = 2) must dominate it.
    let star = generators::star(64);
    let rep = por_report(&star, "star", 40, 11, 4).unwrap();
    assert_eq!(
        rep.opt_upper,
        2 * rep.m,
        "star scheme must realise OPT = 2m"
    );
    assert!(rep.opt_upper <= rep.m * rep.r, "star: r* ≥ 2 so m·r* ≥ 2m");
    assert!(
        rep.por_lower <= rep.theorem8 + 1e-9,
        "star: measured {} above Theorem 8 bound {}",
        rep.por_lower,
        rep.theorem8
    );
}

#[test]
fn star_por_grows_with_n_like_log() {
    // PoR(star) = r*/2; Theorem 6 says Θ(log n).
    let r_small = minimal_r_star(64, 1.0 - 1.0 / 64.0, 300, 5, 4);
    let r_large = minimal_r_star(4096, 1.0 - 1.0 / 4096.0, 300, 5, 4);
    assert!(
        r_large > r_small,
        "threshold must grow: {r_small} vs {r_large}"
    );
    // Growth should be roughly the log ratio (2x), definitely not linear (64x).
    assert!(
        (r_large as f64) < (r_small as f64) * 8.0,
        "superlogarithmic growth: {r_small} -> {r_large}"
    );
}

#[test]
fn box_scheme_certificate_verifies_for_every_family() {
    for g in [
        generators::path(12),
        generators::cycle(12),
        generators::grid(4, 4),
        generators::hypercube(4),
        generators::binary_tree(15),
        generators::barbell(6),
        generators::lollipop(5, 4),
        generators::wheel(10),
    ] {
        let s = opt::box_scheme(&g).expect("connected family");
        let tn = TemporalNetwork::new(g.clone(), s.assignment.clone(), s.lifetime).unwrap();
        assert!(treach_holds(&tn, 2), "box scheme failed on a family");
    }
}

#[test]
fn theorem8_bound_dominates_diameter_families() {
    // The bound (2 d ln n)·m/(n−1) must exceed 1 for every connected graph
    // we evaluate, and scale with the diameter.
    let path = theorem8_bound(100, 99, 99);
    let star = theorem8_bound(100, 99, 2);
    assert!(path > star);
    assert!(star > 1.0);
}
