//! Property-based tests over the whole stack: random instances, structural
//! invariants.

use ephemeral_networks::graph::{algo, GraphBuilder};
use ephemeral_networks::rng::{RandomSource, SeedSequence};
use ephemeral_networks::temporal::foremost::foremost;
use ephemeral_networks::temporal::reverse::latest_departure;
use ephemeral_networks::temporal::{LabelAssignment, TemporalNetwork, Time, NEVER};
use proptest::prelude::*;

/// Strategy: a connected-ish random undirected graph as an edge list over
/// `n ≤ 12` nodes, plus 1–3 labels per edge in `1..=12`.
fn arb_temporal_network() -> impl Strategy<Value = TemporalNetwork> {
    (2usize..12, any::<u64>()).prop_map(|(n, seed)| {
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);
        let mut b = GraphBuilder::new_undirected(n);
        b.dedup_edges();
        // A random spanning-ish structure plus extra random edges.
        for v in 1..n as u32 {
            let u = rng.bounded_u32(v);
            b.add_edge(u, v);
        }
        for _ in 0..n {
            let u = rng.bounded_u32(n as u32);
            let v = rng.bounded_u32(n as u32);
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build().expect("valid random graph");
        let lifetime: Time = 12;
        let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
            let k = 1 + rng.index(3);
            (0..k).map(|_| rng.range_u32(1, lifetime)).collect()
        })
        .unwrap();
        TemporalNetwork::new(g, labels, lifetime).unwrap()
    })
}

/// Exhaustive journey arrival by DFS — the specification foremost is
/// checked against.
fn brute_force_arrival(tn: &TemporalNetwork, s: u32, t: u32) -> Option<Time> {
    fn dfs(tn: &TemporalNetwork, cur: u32, t: u32, last: Time, best: &mut Option<Time>) {
        if cur == t && last > 0 {
            if best.is_none() || last < best.unwrap() {
                *best = Some(last);
            }
            return;
        }
        if best.is_some_and(|b| last >= b) {
            return; // cannot improve
        }
        let (nbrs, eids) = tn.graph().out_adjacency(cur);
        for (&v, &e) in nbrs.iter().zip(eids) {
            for &l in tn.labels(e) {
                if l > last {
                    dfs(tn, v, t, l, best);
                }
            }
        }
    }
    let mut best = None;
    dfs(tn, s, t, 0, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn foremost_matches_bruteforce(tn in arb_temporal_network()) {
        let n = tn.num_nodes() as u32;
        let s = 0u32;
        let run = foremost(&tn, s, 0);
        for t in 1..n {
            let brute = brute_force_arrival(&tn, s, t);
            let swept = run.arrival(t).filter(|_| t != s);
            prop_assert_eq!(swept, brute, "target {}", t);
        }
    }

    #[test]
    fn journeys_reconstructed_are_realizable(tn in arb_temporal_network()) {
        let run = foremost(&tn, 0, 0);
        for t in 1..tn.num_nodes() as u32 {
            if let Some(j) = run.journey_to(t) {
                prop_assert!(j.is_realizable_in(&tn));
                prop_assert_eq!(j.arrival(), run.arrival(t).unwrap());
                prop_assert!(j.hops() < tn.num_nodes() * 13, "journeys never loop forever");
            }
        }
    }

    #[test]
    fn reverse_reachability_mirrors_forward(tn in arb_temporal_network()) {
        let n = tn.num_nodes() as u32;
        let t = n - 1;
        let rev = latest_departure(&tn, t, tn.lifetime());
        for s in 0..n {
            if s == t { continue; }
            let fwd = foremost(&tn, s, 0).reached(t);
            prop_assert_eq!(fwd, rev.reaches(s), "s = {}", s);
        }
    }

    #[test]
    fn reverse_departure_is_maximal(tn in arb_temporal_network()) {
        // Departing strictly later than the reverse sweep's answer must
        // make the target unreachable.
        let n = tn.num_nodes() as u32;
        let t = n - 1;
        let rev = latest_departure(&tn, t, tn.lifetime());
        for s in 0..n {
            if s == t { continue; }
            if let Some(dep) = rev.departure(s) {
                // A foremost run restricted to labels > dep-1 reaches t…
                prop_assert!(foremost(&tn, s, dep - 1).reached(t));
                // …but restricted to labels > dep it must not.
                prop_assert!(!foremost(&tn, s, dep).reached(t), "s = {}", s);
            }
        }
    }

    #[test]
    fn temporal_reach_never_exceeds_static_reach(tn in arb_temporal_network()) {
        for s in 0..tn.num_nodes() as u32 {
            let static_reach = algo::bfs_distances(tn.graph(), s)
                .iter().filter(|&&d| d != algo::UNREACHABLE).count();
            let temporal = foremost(&tn, s, 0).reached_count();
            prop_assert!(temporal <= static_reach);
        }
    }

    #[test]
    fn arrival_times_are_within_lifetime(tn in arb_temporal_network()) {
        let run = foremost(&tn, 0, 0);
        for &a in run.arrivals() {
            prop_assert!(a == NEVER || a <= tn.lifetime());
        }
    }
}
