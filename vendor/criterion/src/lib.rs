//! Offline API-compatible subset of the `criterion` benchmark harness.
//!
//! The workspace's 11 bench targets are written against the standard
//! criterion surface (`criterion_group!` / `criterion_main!` / `Criterion`
//! benchmark groups). This vendored subset keeps those targets compiling and
//! running with no network access: it performs a short warm-up, then a fixed
//! number of timed samples, and reports median / mean nanoseconds per
//! iteration to stdout. No statistical analysis, plots or baselines — just
//! honest wall-clock numbers suitable for coarse kernel comparisons.
//!
//! Command-line arguments passed by `cargo bench` (`--bench`, filters) are
//! accepted; a filter string restricts which benchmark ids run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name criterion users
/// expect.
pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes the target with `--bench` plus any user
        // filter; `cargo test --benches` invokes it with `--test`. Unknown
        // `--flag value` pairs (e.g. upstream criterion's `--sample-size 20`)
        // are skipped whole, so the value is not mistaken for a filter.
        let mut filter = None;
        let mut list_only = false;
        let mut skip_value = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--test" | "--noplot" | "-n" => skip_value = false,
                "--list" => {
                    list_only = true;
                    skip_value = false;
                }
                s if s.starts_with("--") => skip_value = !s.contains('='),
                _ if skip_value => skip_value = false,
                s => filter = Some(s.to_string()),
            }
        }
        Self {
            filter,
            sample_size: 20,
            list_only,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Register and run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id.into(), sample_size, f);
        self
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.list_only {
            println!("{id}: bench");
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        };
        f(&mut bencher);
        bencher.report(&id);
    }
}

/// A named group of benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples taken per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Register and run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(full, sample_size, f);
        self
    }

    /// Finish the group (retained for API compatibility; reporting is
    /// per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the supplied routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting the configured number of samples. Each
    /// sample runs the routine enough times to amortise timer overhead.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + calibration: target ~5ms per sample, at least 1 iter.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(5).as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed / u32::try_from(per_sample).unwrap_or(u32::MAX));
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id}: no samples (Bencher::iter never called)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / u32::try_from(sorted.len()).unwrap_or(1);
        println!(
            "{id}: median {} / mean {} per iter ({} samples)",
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// Define a benchmark group: `criterion_group!(benches, fn_a, fn_b);`
/// expands to a function `benches()` that runs each registered function
/// against a shared [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench entry point: `criterion_main!(benches);` expands to
/// `fn main` invoking each group (bench targets set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
            list_only: false,
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_respects_filter() {
        let mut c = Criterion {
            filter: Some("matches".into()),
            sample_size: 2,
            list_only: false,
        };
        let mut ran = false;
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("skipped", |b| {
            b.iter(|| 1);
            ran = true;
        });
        group.finish();
        assert!(!ran);
    }
}
