//! Offline API-compatible subset of the `crossbeam` crate.
//!
//! The workspace uses exactly one crossbeam facility — the unbounded MPMC
//! [`channel`] — to feed the persistent worker pool in `ephemeral-parallel`.
//! This vendored subset implements it over `std::sync` (a `Mutex<VecDeque>`
//! plus a `Condvar`): not lock-free, but correct, dependency-free and more
//! than fast enough for coarse-grained job dispatch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels (unbounded only).

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of an unbounded channel; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent message back to the caller.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam: `Debug` without a `T: Debug` bound, so
    // channels of non-Debug payloads (boxed closures) stay ergonomic.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}
    impl<T> std::error::Error for SendError<T> {}

    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Create an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, waking one blocked receiver. Fails (returning the
        /// value) only when every `Receiver` has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = lock(&self.shared.queue);
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared.queue).senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.shared.queue);
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                // Unblock every receiver so they can observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next value, blocking while the channel is empty.
        /// Fails only when the channel is empty *and* every `Sender` has
        /// been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock(&self.shared.queue);
            loop {
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Dequeue without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            lock(&self.shared.queue).items.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared.queue).receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock(&self.shared.queue).receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), None);
        }

        #[test]
        fn recv_errs_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            tx.send(9).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errs_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(3), Err(SendError(3)));
        }

        #[test]
        fn multi_consumer_drains_everything() {
            let (tx, rx) = unbounded::<usize>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<usize> = consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<_>>());
        }
    }
}
