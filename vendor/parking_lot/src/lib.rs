//! Offline API-compatible subset of the `parking_lot` crate.
//!
//! This workspace builds with no network access, so the handful of
//! `parking_lot` APIs it uses ([`Mutex`], [`Condvar`]) are provided here as
//! thin wrappers over `std::sync`. Semantics match `parking_lot` where the
//! workspace relies on them:
//!
//! * `Mutex::lock` returns a guard directly (no `Result`) — poisoning is
//!   swallowed, as `parking_lot` has no poisoning at all.
//! * `Condvar::wait` takes `&mut MutexGuard` and re-acquires on wake.
//!
//! Only the surface actually exercised by the workspace is implemented.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

fn unpoison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A mutual-exclusion primitive, API-compatible with `parking_lot::Mutex`
/// for the operations this workspace uses.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the mutex, blocking until it is available.
    ///
    /// Unlike `std`, never returns a poison error: a panic while holding the
    /// lock leaves the data accessible, exactly as in `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(unpoison(self.inner.lock())),
        }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }

    /// Mutably borrow the protected value without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

/// RAII guard returned by [`Mutex::lock`]; unlocks on drop.
///
/// Wraps the `std` guard in an `Option` so [`Condvar::wait`] can take
/// ownership through `&mut` (std's `wait` consumes the guard, parking_lot's
/// borrows it). The `Option` is only ever `None` transiently inside `wait`.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    guard: Option<StdMutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable, API-compatible with `parking_lot::Condvar` for the
/// operations this workspace uses.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: StdCondvar::new(),
        }
    }

    /// Atomically release the guard's mutex and block until notified; the
    /// mutex is re-acquired (and the guard refreshed) before returning.
    ///
    /// Spurious wake-ups are possible, exactly as with `parking_lot` — wrap
    /// calls in a predicate loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let owned = guard.guard.take().expect("guard present outside wait");
        guard.guard = Some(unpoison(self.inner.wait(owned)));
    }

    /// Wake a single waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn get_mut_skips_locking() {
        let mut m = Mutex::new(String::from("a"));
        m.get_mut().push('b');
        assert_eq!(&*m.lock(), "ab");
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            drop(started);
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        handle.join().unwrap();
        assert!(*started);
    }
}
