//! `any::<T>()` — strategies for "any value of this type".

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "generate any value" strategy.
pub trait Arbitrary {
    /// Generate an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: tests that want infinities/NaN should ask for
        // them explicitly; unconstrained bit patterns break almost every
        // numeric property for uninteresting reasons.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T` (the `any::<u64>()` form).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::from_seed(1);
        let s = any::<u64>();
        let a = s.sample(&mut rng);
        let b = s.sample(&mut rng);
        assert_ne!(a, b, "consecutive draws should differ");
        let f = any::<f64>().sample(&mut rng);
        assert!(f.is_finite());
    }
}
