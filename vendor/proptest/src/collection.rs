//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The strategy returned by [`vec`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for vectors whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_element_ranges() {
        let mut rng = TestRng::from_seed(7);
        let s = vec(0u32..100, 0..50);
        for _ in 0..128 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 50);
            assert!(v.iter().all(|&x| x < 100));
        }
    }
}
