//! Offline API-compatible subset of the `proptest` crate.
//!
//! The workspace's property tests are written against the standard proptest
//! surface (`proptest!`, strategies, `prop_assert*`). This vendored subset
//! keeps them compiling and running with no network access:
//!
//! * **Deterministic**: every test function derives its RNG from a hash of
//!   its own fully-qualified name and the case index, so a failure
//!   reproduces exactly on re-run — there is no persistence file to manage.
//! * **Non-shrinking**: a failing case panics with its case index; since
//!   generation is deterministic, re-running under a debugger replays it.
//! * **Cappable**: the `PROPTEST_CASES` environment variable caps the number
//!   of cases per test (it can lower, never raise, a count set in source via
//!   [`test_runner::ProptestConfig::with_cases`]), which is how CI keeps the
//!   suite fast.
//!
//! Only the surface actually exercised by the workspace is implemented:
//! integer / float range strategies, tuples, [`strategy::Just`],
//! `any::<T>()`, `prop::collection::vec`, `prop_map` / `prop_flat_map`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Define deterministic property tests.
///
/// Supports the standard proptest forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn name(x: u64, v in prop::collection::vec(0u32..9, 0..5)) { ... }
/// }
/// ```
///
/// Parameters are either `pattern in strategy` or the `name: Type`
/// shorthand for `name in any::<Type>()`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expand each `fn` inside a [`proptest!`] block into a looping
/// test function. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __config.resolved_cases();
            for __case in 0..__cases {
                let __case_ctx = $crate::test_runner::CaseContext::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let mut __rng = __case_ctx.rng();
                $crate::__proptest_bind!(__rng, $($params)*);
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Internal: bind each proptest parameter to a sampled value. Not part of
/// the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $param:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $param = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, mut $param:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let mut $param = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $pat:pat in $strategy:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Assert a boolean property; failure panics with the case's context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality of a property; failure panics with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality of a property; failure panics with both values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}
