//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::any;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

/// Namespace mirror so `prop::collection::vec(...)` resolves after a glob
/// import of this prelude, as it does with upstream proptest.
pub mod prop {
    pub use crate::collection;
}
