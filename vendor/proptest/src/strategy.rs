//! Value-generation strategies: ranges, tuples, `Just`, map / flat-map.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: `sample` produces the
/// final value directly from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Strategy producing `f(v)` for each generated `v`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Strategy that generates `v`, builds the strategy `f(v)`, and samples
    /// from it — for strategies whose shape depends on an earlier draw.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy yielding a clone of one fixed value. See [`Strategy`].
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain: every value is fair game.
                    rng.next_u64() as $t
                } else {
                    lo + (rng.below(span) as $t)
                }
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )+};
}

signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard the half-open upper bound against rounding.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                let u = rng.unit_f64() as $t;
                (lo + u * (hi - lo)).clamp(lo, hi)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(0x5eed)
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..256 {
            let x = (3u32..7).sample(&mut r);
            assert!((3..7).contains(&x));
            let y = (1u64..=u64::MAX).sample(&mut r);
            assert!(y >= 1);
            let z = (0u64..=u64::MAX).sample(&mut r);
            let _ = z; // full domain: any value is valid
            let n = (-5i32..5).sample(&mut r);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..256 {
            let x = (-1e6f64..1e6).sample(&mut r);
            assert!((-1e6..1e6).contains(&x));
            let y = (0.0f64..=1.0).sample(&mut r);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn map_flat_map_and_tuples_compose() {
        let mut r = rng();
        let strat = (2usize..5).prop_flat_map(|n| (Just(n), 0..n as u32));
        for _ in 0..64 {
            let (n, v) = strat.sample(&mut r);
            assert!((2..5).contains(&n));
            assert!((v as usize) < n);
        }
        let doubled = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..64 {
            let d = doubled.sample(&mut r);
            assert!(d % 2 == 0 && (2..20).contains(&d));
        }
    }
}
