//! Case scheduling: configuration, deterministic per-case RNG.

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Default case count when neither source nor environment says
    /// otherwise. Lower than upstream proptest's 256: the workspace's
    /// properties each loop internally, and the tier-1 suite must stay fast.
    pub const DEFAULT_CASES: u32 = 64;

    /// Config running `cases` cases (still cappable by `PROPTEST_CASES`).
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count actually run: the configured count, capped by the
    /// `PROPTEST_CASES` environment variable when that parses smaller.
    /// The cap can only lower a count — CI uses it to bound suite runtime.
    #[must_use]
    pub fn resolved_cases(&self) -> u32 {
        let env_cap = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse::<u32>().ok());
        match env_cap {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: Self::DEFAULT_CASES,
        }
    }
}

/// Identity of one running case: test name and case index. Constructed by
/// the [`proptest!`](crate::proptest) expansion.
#[derive(Debug, Clone, Copy)]
pub struct CaseContext {
    seed: u64,
}

impl CaseContext {
    /// Derive the case's seed from the fully-qualified test name and index.
    #[must_use]
    pub fn new(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, then mix in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            seed: splitmix(h ^ (u64::from(case) << 1 | 1)),
        }
    }

    /// The deterministic generator for this case.
    #[must_use]
    pub fn rng(&self) -> TestRng {
        TestRng { state: self.seed }
    }
}

/// The value-generation RNG handed to strategies: SplitMix64, which is
/// trivially seedable and has no bad seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Construct from a raw seed (mainly for the stub's own tests).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix(self.state)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    /// Debiased by rejection on the low multiplication word.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        // Lemire's multiply-shift with rejection.
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(bound);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(bound);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_context_is_deterministic() {
        let a = CaseContext::new("mod::test", 3).rng().next_u64();
        let b = CaseContext::new("mod::test", 3).rng().next_u64();
        assert_eq!(a, b);
        let c = CaseContext::new("mod::test", 4).rng().next_u64();
        assert_ne!(a, c);
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::from_seed(9);
        for bound in [1u64, 2, 3, 10, u64::MAX] {
            for _ in 0..64 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn env_cap_only_lowers() {
        // Can't mutate the environment safely in parallel tests; just check
        // the pure parts of the resolution logic.
        let cfg = ProptestConfig::with_cases(48);
        assert!(cfg.resolved_cases() <= 48);
    }
}
